"""Unit tests for the simplified TCP Reno implementation."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.sim.network import Network
from repro.transport.tcp import TcpSender, install_tcp_flows
from repro.units import MBPS


def _net(bottleneck=8 * MBPS, prop=0.0005, buffer_bytes=None):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 800 * MBPS, prop)
    net.add_link("SW", "b", bottleneck, prop)
    if buffer_bytes is not None:
        net.nodes["SW"].ports["b"].set_buffer(buffer_bytes)
    return net


def test_short_flow_completes():
    net = _net()
    flow = Flow(1, "a", "b", 10_000, start=0.0)
    stats = install_tcp_flows(net, [flow], min_rto=0.05)
    net.run(until=5.0)
    assert stats.completed == 1
    assert stats.fct[1] > 0


def test_fct_accounts_from_flow_start():
    net = _net()
    flow = Flow(1, "a", "b", 3_000, start=0.25)
    stats = install_tcp_flows(net, [flow], min_rto=0.05)
    net.run(until=5.0)
    # FCT excludes the pre-start idle time.
    assert stats.fct[1] < 0.1


def test_bytes_arrive_in_order_at_receiver():
    net = _net()
    flow = Flow(1, "a", "b", 60_000, start=0.0)
    stats = install_tcp_flows(net, [flow], min_rto=0.05)
    net.run(until=5.0)
    assert stats.completed == 1


def test_slow_start_doubles_window():
    net = _net(prop=0.01)  # 20ms RTT so rounds are visible
    flow = Flow(1, "a", "b", 500_000, start=0.0)
    stats = install_tcp_flows(net, [flow], min_rto=0.1)
    sender = None
    # grab the sender agent off the host
    sender = net.host("a")._senders[1]
    net.run(until=0.25)  # several ~40ms RTTs
    assert isinstance(sender, TcpSender)
    assert sender.cwnd >= 8  # grew well beyond the initial 2


def test_loss_triggers_retransmission_and_recovery():
    net = _net(buffer_bytes=6_000)  # tiny buffer forces drops
    flow = Flow(1, "a", "b", 300_000, start=0.0)
    stats = install_tcp_flows(net, [flow], min_rto=0.05)
    net.run(until=20.0)
    assert stats.completed == 1, "flow must recover from drops and finish"
    assert stats.retransmissions[1] > 0
    assert net.tracer.drops > 0


def test_competing_flows_share_bottleneck():
    net = _net(buffer_bytes=20_000)
    flows = [
        Flow(1, "a", "b", 150_000, start=0.0),
        Flow(2, "a", "b", 150_000, start=0.0),
    ]
    stats = install_tcp_flows(net, flows, min_rto=0.05)
    net.run(until=30.0)
    assert stats.completed == 2


def test_acks_are_small_and_urgent():
    net = _net()
    flow = Flow(1, "a", "b", 3_000, start=0.0)
    install_tcp_flows(net, [flow], min_rto=0.05)
    net.run(until=2.0)
    acks = [r for r in net.tracer.records.values() if r.size == 40]
    assert acks, "receiver should have generated ACKs"
    assert all(r.src == "b" and r.dst == "a" for r in acks)


def test_mean_fct_requires_completions():
    net = _net()
    stats = install_tcp_flows(net, [Flow(1, "a", "b", 1000, start=10.0)])
    with pytest.raises(ValueError):
        stats.mean_fct()
