"""Unit tests for units/conversions and the error hierarchy."""

from __future__ import annotations

import math

import pytest

from repro import errors
from repro.units import (
    MTU,
    TIME_EPSILON,
    almost_leq,
    bits,
    packets_for,
    tx_time,
)


class TestTxTime:
    def test_mtu_at_gigabit(self):
        assert tx_time(1500, 1e9) == pytest.approx(12e-6)

    def test_infinite_bandwidth(self):
        assert tx_time(10**12, math.inf) == 0.0

    def test_zero_size(self):
        assert tx_time(0, 1e9) == 0.0

    @pytest.mark.parametrize("bw", [0.0, -5.0])
    def test_invalid_bandwidth(self, bw):
        with pytest.raises(ValueError):
            tx_time(1500, bw)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            tx_time(-1, 1e9)


def test_bits():
    assert bits(1500) == 12_000


class TestPacketsFor:
    def test_exact_multiple(self):
        assert packets_for(3 * MTU) == 3

    def test_remainder_rounds_up(self):
        assert packets_for(MTU + 1) == 2

    def test_minimum_one_packet(self):
        assert packets_for(0) == 1
        assert packets_for(1) == 1

    def test_custom_mtu(self):
        assert packets_for(2500, mtu=1000) == 3


class TestAlmostLeq:
    def test_within_epsilon(self):
        assert almost_leq(1.0 + TIME_EPSILON / 2, 1.0)

    def test_beyond_epsilon(self):
        assert not almost_leq(1.0 + 10 * TIME_EPSILON, 1.0)

    def test_strictly_less(self):
        assert almost_leq(0.5, 1.0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.RoutingError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.ReplayError,
            errors.WorkloadError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_routing_is_a_configuration_error(self):
        assert issubclass(errors.RoutingError, errors.ConfigurationError)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.ReplayError("boom")
