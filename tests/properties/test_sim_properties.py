"""Property-based tests of core simulator invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import Flow
from repro.core.packet import Packet
from repro.metrics.fairness import jain_index
from repro.schedulers import (
    DrrScheduler,
    FifoScheduler,
    FqScheduler,
    LifoScheduler,
    SjfScheduler,
)
from repro.sim.network import Network
from repro.transport.udp import install_udp_flows
from repro.units import MBPS


def _chain_net(bw=8 * MBPS):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("R1")
    net.add_router("R2")
    net.add_link("a", "R1", 10 * bw, 0.0002)
    net.add_link("R1", "R2", bw, 0.0005)
    net.add_link("R2", "b", 2 * bw, 0.0002)
    return net


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=100, max_value=1500), min_size=1, max_size=12),
    offsets=st.lists(
        st.floats(min_value=0, max_value=0.005, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
)
def test_exit_time_decomposition(sizes, offsets):
    """For any nonpreemptive run: o(p) = i(p) + tmin(p) + total queue wait.

    This is the identity the whole slack algebra rests on (Appendix D).
    """
    n = min(len(sizes), len(offsets))
    net = _chain_net()
    packets = [
        Packet(flow_id=1, size=sizes[k], src="a", dst="b", created=offsets[k])
        for k in range(n)
    ]
    for p in packets:
        net.inject_at(p.created, p)
    net.run()
    for p in packets:
        rec = net.tracer.records[p.pid]
        expected = rec.created + net.tmin("a", "b", p.size) + sum(rec.hop_waits)
        assert rec.exit == pytest.approx(expected, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    scheduler_cls=st.sampled_from(
        [FifoScheduler, LifoScheduler, SjfScheduler, FqScheduler, DrrScheduler]
    ),
    n_packets=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_every_scheduler_conserves_packets(scheduler_cls, n_packets, seed):
    net = _chain_net()
    net.install_schedulers(
        lambda node, _p: scheduler_cls() if node.startswith("R") else None
    )
    rng = np.random.default_rng(seed)
    for k in range(n_packets):
        p = Packet(
            flow_id=int(rng.integers(1, 4)),
            size=int(rng.integers(100, 1500)),
            src="a",
            dst="b",
            created=float(rng.uniform(0, 0.01)),
        )
        net.inject_at(p.created, p)
    net.run()
    assert net.tracer.delivered_count() == n_packets
    assert net.tracer.drops == 0


@settings(max_examples=20, deadline=None)
@given(
    n_packets=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_fifo_preserves_per_flow_order(n_packets, seed):
    net = _chain_net()
    rng = np.random.default_rng(seed)
    packets = []
    t = 0.0
    for k in range(n_packets):
        t += float(rng.uniform(0, 0.002))
        p = Packet(flow_id=1, size=int(rng.integers(100, 1500)),
                   src="a", dst="b", created=t, seq=k)
        packets.append(p)
        net.inject_at(t, p)
    net.run()
    exits = [net.tracer.records[p.pid].exit for p in packets]
    assert exits == sorted(exits)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
def test_jain_index_bounds(rates):
    j = jain_index(rates)
    assert 1.0 / len(rates) - 1e-12 <= j <= 1.0 + 1e-12


@settings(max_examples=15, deadline=None)
@given(
    n_flows=st.integers(min_value=2, max_value=5),
    pkts_per_flow=st.integers(min_value=5, max_value=20),
)
def test_fq_serves_backlogged_flows_within_one_packet_of_fair(n_flows, pkts_per_flow):
    """Fair queueing's defining guarantee: over any prefix of a fully
    backlogged busy period, per-flow service differs by at most one
    packet's worth of bytes (SCFQ's fairness bound)."""
    from repro.schedulers import FqScheduler

    sched = FqScheduler()
    size = 1000
    for fid in range(1, n_flows + 1):
        for k in range(pkts_per_flow):
            p = Packet(flow_id=fid, size=size, src="a", dst="b", created=0.0, seq=k)
            sched.push(p, 0.0)
    served = {fid: 0 for fid in range(1, n_flows + 1)}
    for _ in range(n_flows * pkts_per_flow):
        p = sched.pop(0.0)
        served[p.flow_id] += p.size
        spread = max(served.values()) - min(served.values())
        assert spread <= 2 * size, f"unfair prefix: {served}"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_work_conserving_port_busy_until_backlog_clears(seed):
    """Inject a burst at t=0: every port serves work-conservingly, so the
    exit times follow the tandem-queue (Lindley) recurrence exactly.

    Each hop's port starts the next transmission the instant both the
    packet has fully arrived (store-and-forward) and the link is free —
    never earlier, never a moment of idle with backlog waiting.  That is
    precisely this per-packet recurrence over the a→R1→R2→b chain; no
    closed form in the sizes alone is correct, because a large leading
    packet can make the *egress* link the momentary backlog point.
    """
    net = _chain_net()
    rng = np.random.default_rng(seed)
    sizes = [int(rng.integers(200, 1500)) for _ in range(8)]
    for s in sizes:
        net.inject_at(0.0, Packet(flow_id=1, size=s, src="a", dst="b", created=0.0))
    net.run()
    exits = sorted(r.exit for r in net.tracer.delivered_records())
    bw = 8e6  # _chain_net's bottleneck; host link 10x, egress 2x
    arrive_r1 = 0.0  # FIFO at every hop: injection order is service order
    free_r1 = free_r2 = 0.0
    model = []
    for s in sizes:
        arrive_r1 += 8 * s / (10 * bw)
        free_r1 = max(arrive_r1 + 0.0002, free_r1) + 8 * s / bw
        free_r2 = max(free_r1 + 0.0005, free_r2) + 8 * s / (2 * bw)
        model.append(free_r2 + 0.0002)
    assert exits == pytest.approx(sorted(model), rel=1e-9)
