"""Property-based tests of the replay theorems on randomized scenarios.

The generators build small random workloads over parameterized topologies
and assert the paper's structural guarantees:

* omniscient replay is always perfect (Appendix B) — this doubles as an
  oracle for the entire simulator: any timing bug breaks it;
* network-EDF and LSTF produce identical replays (Appendix E);
* replay never loses packets, and lateness is bounded below by -o(p)
  (packets cannot exit before entering).
"""

from __future__ import annotations

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import Flow
from repro.core.replay import record_schedule, replay_schedule
from repro.topology.simple import build_dumbbell, build_parking_lot, build_single_switch
from repro.transport.udp import install_udp_flows

# Keep runtimes bounded: tiny flows, short horizons.
flow_sizes = st.integers(min_value=200, max_value=20_000)
starts = st.floats(min_value=0.0, max_value=0.01, allow_nan=False)


def _random_flows(draw_sizes, draw_starts, hosts_src, hosts_dst, n):
    flows = []
    for i in range(n):
        src = hosts_src[i % len(hosts_src)]
        dst = hosts_dst[(i * 7 + 3) % len(hosts_dst)]
        flows.append(
            Flow(fid=i + 1, src=src, dst=dst, size=draw_sizes[i], start=draw_starts[i])
        )
    return flows


topologies = st.sampled_from(
    [
        ("single", functools.partial(build_single_switch, num_senders=4)),
        ("dumbbell", functools.partial(build_dumbbell, num_pairs=4)),
        ("parking", functools.partial(build_parking_lot, num_hops=2)),
    ]
)


def _hosts_for(kind, net):
    names = [h.name for h in net.hosts]
    if kind == "single":
        return [n for n in names if n != "sink"], ["sink"]
    if kind == "dumbbell":
        return [n for n in names if n.startswith("s_")], [
            n for n in names if n.startswith("d_")
        ]
    return [n for n in names if n.startswith("h_in")], [
        n for n in names if n.startswith("h_out")
    ]


@settings(max_examples=20, deadline=None)
@given(
    topo=topologies,
    sizes=st.lists(flow_sizes, min_size=3, max_size=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_omniscient_replay_is_always_perfect(topo, sizes, seed):
    kind, make = topo
    net = make()
    src, dst = _hosts_for(kind, net)
    rng = np.random.default_rng(seed)
    flows = _random_flows(
        sizes, [float(rng.uniform(0, 0.01)) for _ in sizes], src, dst, len(sizes)
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    result = replay_schedule(schedule, make, mode="omniscient")
    assert result.perfect, (
        f"omniscient replay late by {result.max_lateness} on {kind}"
    )


@settings(max_examples=15, deadline=None)
@given(
    topo=topologies,
    sizes=st.lists(flow_sizes, min_size=3, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_edf_and_lstf_replays_are_identical(topo, sizes, seed):
    kind, make = topo
    net = make()
    src, dst = _hosts_for(kind, net)
    rng = np.random.default_rng(seed)
    flows = _random_flows(
        sizes, [float(rng.uniform(0, 0.01)) for _ in sizes], src, dst, len(sizes)
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    lstf = replay_schedule(schedule, make, mode="lstf")
    edf = replay_schedule(schedule, make, mode="edf")
    assert np.allclose(lstf.lateness, edf.lateness, atol=1e-9)


@settings(max_examples=12, deadline=None)
@given(
    topo=topologies,
    sizes=st.lists(flow_sizes, min_size=3, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_preemptive_edf_equals_preemptive_lstf(topo, sizes, seed):
    """Appendix E extends to the preemptive service model: the static EDF
    priority equals the LSTF heap key, so the two replays coincide."""
    kind, make = topo
    net = make()
    src, dst = _hosts_for(kind, net)
    rng = np.random.default_rng(seed)
    flows = _random_flows(
        sizes, [float(rng.uniform(0, 0.01)) for _ in sizes], src, dst, len(sizes)
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    lstf = replay_schedule(schedule, make, mode="lstf-preemptive")
    edf = replay_schedule(schedule, make, mode="edf-preemptive")
    assert np.allclose(lstf.lateness, edf.lateness, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(flow_sizes, min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(["lstf", "priority", "omniscient", "lstf-preemptive"]),
)
def test_replay_conserves_packets(sizes, seed, mode):
    make = functools.partial(build_dumbbell, num_pairs=3)
    net = make()
    src = [f"s_{i}" for i in range(3)]
    dst = [f"d_{i}" for i in range(3)]
    rng = np.random.default_rng(seed)
    flows = _random_flows(
        sizes, [float(rng.uniform(0, 0.005)) for _ in sizes], src, dst, len(sizes)
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    result = replay_schedule(schedule, make, mode=mode)
    assert result.num_packets == len(schedule)
    # A replayed packet cannot exit before the uncongested traversal time.
    assert np.all(result.lateness >= -np.array(
        [p.output_time - p.ingress_time for p in schedule.packets]
    ) - 1e-9)


@settings(max_examples=15, deadline=None)
@given(
    n_flows=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_preemptive_lstf_perfect_with_two_congestion_points(n_flows, seed):
    """Appendix G: at most two congestion points per packet => perfect.

    Unique src/dst per flow on a dumbbell whose egress links outrun the
    bottleneck: packets can only wait at their host uplink and at the
    shared bottleneck.
    """
    make = functools.partial(
        build_dumbbell, num_pairs=n_flows, host_bw=100e6, bottleneck_bw=20e6
    )
    net = make()
    rng = np.random.default_rng(seed)
    flows = [
        Flow(
            fid=i + 1,
            src=f"s_{i}",
            dst=f"d_{i}",
            size=int(rng.integers(1_000, 30_000)),
            start=float(rng.uniform(0, 0.01)),
        )
        for i in range(n_flows)
    ]
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    if schedule.max_congestion_points() > 2:
        return  # theorem precondition not met for this draw
    result = replay_schedule(schedule, make, mode="lstf-preemptive")
    assert result.perfect, f"late by {result.max_lateness}"
