"""Property-based tests of the scenario layer's determinism contracts.

The tentpole guarantees, stated as properties over randomized inputs:

* empirical CDF inverse-transform sampling is monotone in the uniform
  draw, and the declared mean matches the piecewise-linear table;
* the flow list is a pure function of (scenario, seed, duration) —
  byte-identical on repetition;
* distinct seeds yield disjoint flow-id streams (legs can always merge);
* Jain's index lands in (0, 1] on positive rates and is exactly 1 on
  equal allocations — the fairness figure embedded in every matrix leg.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import artifact_fairness, jain_index
from repro.scenarios import get_scenario, scenario_flows, scenario_names
from repro.workload.distributions import EmpiricalCdf, make_distribution

#: The empirical presets: the distributions defined by CDF tables.
_CDF_PRESETS = ("web-search", "data-mining", "internet")

seeds = st.integers(min_value=0, max_value=2**31)
builtin = st.sampled_from(scenario_names())


# -- CDF inverse-transform sampling -------------------------------------


@settings(max_examples=40)
@given(
    name=st.sampled_from(_CDF_PRESETS),
    u1=st.floats(min_value=0.0, max_value=1.0),
    u2=st.floats(min_value=0.0, max_value=1.0),
)
def test_inverse_transform_is_monotone(name, u1, u2):
    """A larger uniform draw can never map to a smaller flow size."""
    dist = make_distribution(name)
    lo, hi = sorted((u1, u2))
    size_lo = float(np.interp(lo, dist._probs, dist._sizes))
    size_hi = float(np.interp(hi, dist._probs, dist._sizes))
    assert size_lo <= size_hi


@settings(max_examples=20)
@given(name=st.sampled_from(_CDF_PRESETS))
def test_declared_mean_matches_the_table(name):
    """mean() equals the dense-grid expectation of the inverse CDF."""
    dist = make_distribution(name)
    grid = np.linspace(0.0, 1.0, 200_001)
    dense_mean = float(np.trapezoid(np.interp(grid, dist._probs, dist._sizes),
                                    grid))
    assert abs(dist.mean() - dense_mean) <= 0.001 * dense_mean


@settings(max_examples=30)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=10**7),
                   min_size=2, max_size=8, unique=True),
    seed=seeds,
)
def test_random_cdf_tables_sample_within_their_support(sizes, seed):
    points = sorted(sizes)
    n = len(points)
    cdf = EmpiricalCdf(
        [(s, i / (n - 1)) for i, s in enumerate(points)], name="random"
    )
    rng = np.random.default_rng(seed)
    for _ in range(10):
        assert points[0] <= cdf.sample(rng) <= points[-1] + 0.5


# -- flow-list determinism ----------------------------------------------


@settings(max_examples=25, deadline=None)
@given(name=builtin, seed=seeds)
def test_same_seed_yields_byte_identical_flow_lists(name, seed):
    scenario = get_scenario(name)
    a = scenario_flows(scenario, seed, 0.006)
    b = scenario_flows(scenario, seed, 0.006)
    assert a == b


@settings(max_examples=25, deadline=None)
@given(
    name=builtin,
    seed_a=st.integers(min_value=0, max_value=10_000),
    seed_b=st.integers(min_value=0, max_value=10_000),
)
def test_distinct_seeds_yield_disjoint_fid_streams(name, seed_a, seed_b):
    scenario = get_scenario(name)
    fids_a = {f.fid for f in scenario_flows(scenario, seed_a, 0.006)}
    fids_b = {f.fid for f in scenario_flows(scenario, seed_b, 0.006)}
    if seed_a == seed_b:
        assert fids_a == fids_b
    else:
        assert fids_a.isdisjoint(fids_b)


# -- Jain's fairness index ----------------------------------------------


@settings(max_examples=50)
@given(rates=st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
    min_size=1, max_size=20,
))
def test_jain_in_unit_interval_on_positive_rates(rates):
    index = jain_index(rates)
    assert 0.0 < index <= 1.0 + 1e-12
    embedded = artifact_fairness(rates)
    assert 0.0 <= embedded <= 1.0


@settings(max_examples=50)
@given(
    rate=st.floats(min_value=1e-3, max_value=1e9),
    n=st.integers(min_value=1, max_value=50),
)
def test_jain_is_exactly_one_on_equal_allocations(rate, n):
    # Raw float arithmetic may be off by an ulp; the artifact rounding is
    # what guarantees equal allocations embed as exactly 1.0.
    assert jain_index([rate] * n) == 1.0 or (
        abs(jain_index([rate] * n) - 1.0) < 1e-9
    )
    assert artifact_fairness([rate] * n) == 1.0
