"""Property-based tests of engine checkpoint round-trips.

The generators build randomized event-heap mixes — plain events,
cancellable timers (some cancelled before they fire), same-instant
deferred decisions, and sampler sentinels — run the engine to a random
mid-point, pickle it, and assert the restored engine replays the
remaining schedule *identically* to the uninterrupted one.  This is the
micro-level half of the resume contract: if a pickled engine can diverge
on any heap mix, mid-run snapshots (:mod:`repro.sim.resume`) cannot be
trusted on real workloads.

Also pinned here: sampler entries never survive a checkpoint (they are
telemetry, re-armed by the hub), and cancelled timers stay cancelled
across the round trip.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

#: Event times — coarse grid so same-instant collisions (the deferred
#: queue's reason to exist) actually happen.
times = st.integers(min_value=0, max_value=40).map(lambda t: t / 100.0)

event_specs = st.lists(
    st.tuples(
        times,
        st.sampled_from(["normal", "cancellable", "cancelled", "deferring"]),
    ),
    min_size=1,
    max_size=30,
)


class Recorder:
    """Picklable event log: bound methods of this ride the heap."""

    def __init__(self) -> None:
        self.seen: list[tuple[str, float, int]] = []

    def note(self, engine: Engine, tag: int) -> None:
        self.seen.append(("note", engine.now, tag))

    def fire(self, engine: Engine, tag: int) -> None:
        self.seen.append(("fire", engine.now, tag))

    def decide(self, engine: Engine, tag: int) -> None:
        # A same-instant decision, deferred exactly the way ports defer
        # scheduling choices: it runs once no heap event shares the
        # timestamp, and schedules a follow-up event.
        engine.defer(DeferredDecision(self, engine, tag))

    def decided(self, engine: Engine, tag: int) -> None:
        self.seen.append(("decided", engine.now, tag))


class DeferredDecision:
    """Picklable deferred-queue entry (a closure would not pickle)."""

    def __init__(self, recorder: Recorder, engine: Engine, tag: int) -> None:
        self.recorder = recorder
        self.engine = engine
        self.tag = tag

    def __call__(self) -> None:
        self.recorder.seen.append(("deferred", self.engine.now, self.tag))
        self.engine.schedule(0.005, self.recorder.decided, self.engine, self.tag)


def _sampler_tick() -> None:  # sampler path wants a zero-arg callable
    pass


def _build(specs) -> tuple[Engine, Recorder]:
    engine = Engine()
    recorder = Recorder()
    for tag, (time, kind) in enumerate(specs):
        if kind == "normal":
            engine.schedule_at(time, recorder.fire, engine, tag)
        elif kind in ("cancellable", "cancelled"):
            handle = engine.schedule_cancellable_at(
                time, recorder.note, engine, tag)
            if kind == "cancelled":
                handle.cancel()
        else:  # deferring: provokes the same-instant decision queue
            engine.schedule_at(time, recorder.decide, engine, tag)
        # Sampler sentinels everywhere: they must never affect replay.
        engine.schedule_sample(time, _sampler_tick)
    return engine, recorder


def _clone_recorder(clone: Engine) -> Recorder | None:
    """The pickled clone's Recorder, found through its own heap/deferred.

    The clone's callbacks are bound to a *cloned* recorder (pickle memo
    keeps it single); its ``seen`` list already carries the pre-split
    head, so after running the clone it holds the full resumed log.
    """
    for entry in clone._heap:
        callback = entry[2]
        callback = getattr(callback, "_callback", None) or callback
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Recorder):
            return owner
    for item in clone._deferred:
        owner = getattr(item, "recorder", None)
        if isinstance(owner, Recorder):
            return owner
    return None


@given(specs=event_specs, split=st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_pickled_mid_run_engine_replays_identically(specs, split):
    """run(all) == run(to t) + pickle-round-trip + run(rest), event-wise."""
    straight_engine, straight = _build(specs)
    straight_engine.run()

    engine, recorder = _build(specs)
    engine.run(until=split / 100.0)
    head = list(recorder.seen)

    clone: Engine = pickle.loads(pickle.dumps(engine))
    clone_recorder = _clone_recorder(clone)
    clone.run()
    resumed = clone_recorder.seen if clone_recorder is not None else head

    assert resumed == straight.seen
    assert clone.events_processed == straight_engine.events_processed
    # The *final* clocks may legitimately differ: sampler sentinels
    # advance the straight engine's clock but never survive the pickle,
    # and cancelled timers advance no clock at all.  Real phases pin the
    # clock with ``run(until=...)``, so only the event stream and the
    # processed count — asserted above — carry the resume contract.
    if resumed:
        assert clone.now >= resumed[-1][1]


@given(specs=event_specs, split=st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_checkpoint_drops_samplers_and_keeps_cancellations(specs, split):
    engine, _ = _build(specs)
    engine.run(until=split / 100.0)
    state = engine.checkpoint()

    from repro.sim.engine import _CANCELLABLE_MARKER, _SAMPLER

    assert all(entry[3] is not _SAMPLER for entry in state["heap"])
    # Cancelled timers survive as cancelled: their handles carry no
    # callback, so a restored engine skips them just as the live one
    # would have.
    live_cancelled = sum(
        1 for entry in engine._heap
        if entry[3] is not _SAMPLER
        and hasattr(entry[2], "_callback") and entry[2]._callback is None
    )
    ckpt_cancelled = sum(
        1 for entry in state["heap"]
        if entry[3] == _CANCELLABLE_MARKER and entry[2]._callback is None
    )
    assert ckpt_cancelled == live_cancelled
    # The counters a resume fingerprint is built from travel verbatim.
    assert state["now"] == engine.now
    assert state["events_processed"] == engine.events_processed
