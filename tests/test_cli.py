"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    commands = set(sub.choices)
    assert {"table1", "fig1", "fig2", "fig3", "fig4", "gadgets", "info",
            "weighted"} <= commands


def test_gadgets_command(capsys):
    assert main(["gadgets"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out and "Figure 7" in out and "Figure 5" in out
    assert "False" not in out  # every claim holds


def test_table1_single_row(capsys):
    assert main(["table1", "--rows", "0", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Random" in out
    assert "overdue" in out


def test_info_command(capsys):
    assert main(["info", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "quantisation" in out


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])
