"""Tests for the ``python -m repro`` command-line interface.

The CLI is a thin dispatcher over the experiment registry: one generic
``run`` subcommand plus an auto-generated legacy alias per experiment.
"""

from __future__ import annotations

import json

import pytest

from repro.api import REGISTRY
from repro.cli import build_parser, main

LEGACY_COMMANDS = {"table1", "fig1", "fig2", "fig3", "fig4", "gadgets", "info",
                   "weighted"}


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    commands = set(sub.choices)
    assert LEGACY_COMMANDS | {"run", "list"} <= commands


def test_cluster_verbs_are_registered():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    assert {"submit", "worker", "status"} <= set(sub.choices)


def test_every_registered_experiment_has_an_alias():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    assert set(REGISTRY.names()) <= set(sub.choices)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in LEGACY_COMMANDS:
        assert name in out


def test_gadgets_command(capsys):
    assert main(["gadgets"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out and "Figure 7" in out and "Figure 5" in out
    assert "False" not in out  # every claim holds


def test_table1_single_row(capsys):
    assert main(["table1", "--rows", "0", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Random" in out
    assert "overdue" in out


def test_table1_rejects_out_of_range_rows(capsys):
    assert main(["table1", "--rows", "99", "--duration", "0.05"]) == 2
    captured = capsys.readouterr()
    assert "out of range" in captured.err
    assert "0..13" in captured.err
    assert captured.out == ""


def test_run_rejects_unknown_experiment(capsys):
    assert main(["run", "nosuch"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_rejects_rows_for_experiments_without_them(capsys):
    assert main(["run", "fig1", "--rows", "0"]) == 2
    err = capsys.readouterr().err
    assert "does not read option" in err


def test_run_alias_and_legacy_emit_the_same_table(capsys):
    """`repro run table1 --json` carries exactly the legacy table's rows."""
    assert main(["table1", "--rows", "0", "--duration", "0.05"]) == 0
    legacy = capsys.readouterr().out.strip()
    assert main(["run", "table1", "--rows", "0", "--duration", "0.05",
                 "--json"]) == 0
    artifact = json.loads(capsys.readouterr().out)
    from repro.api import RunArtifact

    rebuilt = RunArtifact.from_dict(artifact).table().render().strip()
    assert rebuilt == legacy


def test_json_artifact_persists_with_out(tmp_path, capsys):
    assert main(["run", "gadgets", "--json", "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    files = list(tmp_path.glob("gadgets-*.json"))
    assert len(files) == 1
    on_disk = json.loads(files[0].read_text())
    printed = json.loads(captured.out)
    assert on_disk == printed
    assert on_disk["spec"]["experiment"] == "gadgets"
    assert on_disk["rows"]


def test_seed_sweep_emits_a_json_array(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.04",
                 "--seeds", "1", "2", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert isinstance(artifacts, list)
    assert [a["spec"]["seeds"] for a in artifacts] == [[1], [2]]


def test_flags_an_experiment_ignores_are_rejected(capsys):
    assert main(["gadgets", "--duration", "9"]) == 2
    assert "does not use --duration" in capsys.readouterr().err
    assert main(["run", "fig4", "--scale", "1.0"]) == 2
    assert "does not use --scale" in capsys.readouterr().err
    assert main(["run", "table1", "--slack", "constant"]) == 2
    assert "does not use --slack" in capsys.readouterr().err
    assert main(["run", "fig2", "--replay-modes", "lstf"]) == 2
    assert "does not use --replay-modes" in capsys.readouterr().err


def test_replay_mode_sweep_emits_one_artifact_per_mode(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.03",
                 "--replay-modes", "lstf", "priority", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert [a["spec"]["replay_modes"] for a in artifacts] == [
        ["lstf"], ["priority"]
    ]
    assert [a["metadata"]["mode"] for a in artifacts] == ["lstf", "priority"]


def test_replay_modes_validated_before_simulation(capsys):
    assert main(["run", "table1", "--replay-modes", "clairvoyant"]) == 2
    assert "unknown replay mode" in capsys.readouterr().err


def test_info_command(capsys):
    assert main(["info", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "quantisation" in out


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])
