"""Tests for the ``python -m repro`` command-line interface.

The CLI is a thin dispatcher over the experiment registry: one generic
``run`` subcommand plus an auto-generated legacy alias per experiment.
"""

from __future__ import annotations

import json

import pytest

from repro.api import REGISTRY
from repro.cli import build_parser, main

LEGACY_COMMANDS = {"table1", "fig1", "fig2", "fig3", "fig4", "gadgets", "info",
                   "weighted"}


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    commands = set(sub.choices)
    assert LEGACY_COMMANDS | {"run", "list"} <= commands


def test_cluster_verbs_are_registered():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    assert {"submit", "worker", "status", "gather", "gc"} <= set(sub.choices)


def test_every_registered_experiment_has_an_alias():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    assert set(REGISTRY.names()) <= set(sub.choices)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in LEGACY_COMMANDS:
        assert name in out
    assert "websearch-incast" not in out  # scenarios live behind --scenarios


def test_list_scenarios_command(capsys):
    from repro.scenarios import scenario_names

    assert main(["list", "--scenarios"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    assert "table1" not in out  # experiments live behind the plain list


def test_gadgets_command(capsys):
    assert main(["gadgets"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out and "Figure 7" in out and "Figure 5" in out
    assert "False" not in out  # every claim holds


def test_table1_single_row(capsys):
    assert main(["table1", "--rows", "0", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Random" in out
    assert "overdue" in out


def test_table1_rejects_out_of_range_rows(capsys):
    assert main(["table1", "--rows", "99", "--duration", "0.05"]) == 2
    captured = capsys.readouterr()
    assert "out of range" in captured.err
    assert "0..13" in captured.err
    assert captured.out == ""


def test_run_rejects_unknown_experiment(capsys):
    assert main(["run", "nosuch"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_rejects_rows_for_experiments_without_them(capsys):
    assert main(["run", "fig1", "--rows", "0"]) == 2
    err = capsys.readouterr().err
    assert "does not read option" in err


def test_run_alias_and_legacy_emit_the_same_table(capsys):
    """`repro run table1 --json` carries exactly the legacy table's rows."""
    assert main(["table1", "--rows", "0", "--duration", "0.05"]) == 0
    legacy = capsys.readouterr().out.strip()
    assert main(["run", "table1", "--rows", "0", "--duration", "0.05",
                 "--json"]) == 0
    artifact = json.loads(capsys.readouterr().out)
    from repro.api import RunArtifact

    rebuilt = RunArtifact.from_dict(artifact).table().render().strip()
    assert rebuilt == legacy


def test_json_artifact_persists_with_out(tmp_path, capsys):
    assert main(["run", "gadgets", "--json", "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    files = list(tmp_path.glob("gadgets-*.json"))
    assert len(files) == 1
    on_disk = json.loads(files[0].read_text())
    printed = json.loads(captured.out)
    assert on_disk == printed
    assert on_disk["spec"]["experiment"] == "gadgets"
    assert on_disk["rows"]


def test_seed_sweep_emits_a_json_array(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.04",
                 "--seeds", "1", "2", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert isinstance(artifacts, list)
    assert [a["spec"]["seeds"] for a in artifacts] == [[1], [2]]


def test_flags_an_experiment_ignores_are_rejected(capsys):
    assert main(["gadgets", "--duration", "9"]) == 2
    assert "does not use --duration" in capsys.readouterr().err
    assert main(["run", "fig4", "--scale", "1.0"]) == 2
    assert "does not use --scale" in capsys.readouterr().err
    assert main(["run", "table1", "--slack", "constant"]) == 2
    assert "does not use --slack" in capsys.readouterr().err
    assert main(["run", "fig2", "--replay-modes", "lstf"]) == 2
    assert "does not use --replay-modes" in capsys.readouterr().err
    assert main(["run", "table1", "--scenarios", "websearch-incast"]) == 2
    assert "does not use --scenarios" in capsys.readouterr().err


def test_replay_mode_sweep_emits_one_artifact_per_mode(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.03",
                 "--replay-modes", "lstf", "priority", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert [a["spec"]["replay_modes"] for a in artifacts] == [
        ["lstf"], ["priority"]
    ]
    assert [a["metadata"]["mode"] for a in artifacts] == ["lstf", "priority"]


def test_seed_range_syntax_expands_inclusively(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.03",
                 "--seeds", "1..3", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert [a["spec"]["seeds"] for a in artifacts] == [[1], [2], [3]]


def test_seed_comma_and_range_tokens_mix(capsys):
    assert main(["run", "table1", "--rows", "0", "--duration", "0.03",
                 "--seeds", "5,7..8", "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert [a["spec"]["seeds"] for a in artifacts] == [[5], [7], [8]]


def test_bad_seed_tokens_are_rejected_cleanly(capsys):
    assert main(["run", "table1", "--rows", "0", "--seeds", "1..x"]) == 2
    assert "bad seed token" in capsys.readouterr().err
    assert main(["run", "table1", "--rows", "0", "--seeds", "8..1"]) == 2
    assert "runs backwards" in capsys.readouterr().err


def test_scenario_sweep_emits_one_artifact_per_scenario(capsys):
    assert main(["run", "scenario-matrix", "--duration", "0.006",
                 "--schedulers", "fifo",
                 "--scenarios", "websearch-incast,datamining-a2a",
                 "--json"]) == 0
    artifacts = json.loads(capsys.readouterr().out)
    assert [a["spec"]["scenarios"] for a in artifacts] == [
        ["websearch-incast"], ["datamining-a2a"]
    ]
    assert [a["metadata"]["scenario"] for a in artifacts] == [
        "websearch-incast", "datamining-a2a"
    ]


def test_unknown_scenario_is_rejected_cleanly(capsys):
    assert main(["run", "scenario-matrix", "--scenarios", "nosuch"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_replay_modes_validated_before_simulation(capsys):
    assert main(["run", "table1", "--replay-modes", "clairvoyant"]) == 2
    assert "unknown replay mode" in capsys.readouterr().err


def test_info_command(capsys):
    assert main(["info", "--duration", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "quantisation" in out


def test_gather_round_trip_from_a_non_submitter(tmp_path, capsys):
    """submit -> worker --drain -> `repro gather QUEUE_DIR` collects the
    sweep without holding the submitter's job ids, byte-identical to a
    serial run_many of the same specs."""
    from repro.api import ExperimentSpec, RunArtifact, run_many

    queue_dir = str(tmp_path / "q")
    assert main(["submit", "table1", "--rows", "0", "--duration", "0.04",
                 "--seeds", "1", "2", "--queue", queue_dir]) == 0
    assert main(["worker", "--queue", queue_dir, "--drain"]) == 0
    capsys.readouterr()

    out_dir = tmp_path / "collected"
    assert main(["gather", queue_dir, "--json", "--out", str(out_dir)]) == 0
    captured = capsys.readouterr()
    payloads = json.loads(captured.out)
    assert len(payloads) == 2
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(1, 2), options={"rows": (0,)}
    ).sweep()
    serial = run_many(sweep)
    gathered = [RunArtifact.from_dict(p) for p in payloads]
    assert [a.canonical_json() for a in gathered] == [
        a.canonical_json() for a in serial
    ]
    assert len(list(out_dir.glob("*.json"))) == 2  # --out saved copies

    # --jobs narrows to a subset, in the order given
    assert main(["gather", queue_dir, "--jobs", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spec"]["seeds"] == [2]


def test_gather_errors_are_pointed(tmp_path, capsys):
    assert main(["gather", str(tmp_path / "typo")]) == 2
    assert "not a job queue" in capsys.readouterr().err
    from repro.cluster import JobQueue

    JobQueue(tmp_path / "empty")  # a real queue with nothing submitted
    assert main(["gather", str(tmp_path / "empty")]) == 2
    assert "no jobs to gather" in capsys.readouterr().err


def test_gc_prunes_orphaned_schedules_and_keeps_live_ones(tmp_path, capsys):
    """`repro gc --queue` round trip: schedules of finished sweeps are
    orphans; a pending job's schedule key survives the collection."""
    queue_dir = str(tmp_path / "q")
    assert main(["submit", "table1", "--rows", "0", "--duration", "0.04",
                 "--queue", queue_dir]) == 0
    assert main(["worker", "--queue", queue_dir, "--drain"]) == 0
    capsys.readouterr()
    schedules = tmp_path / "q" / "artifacts" / "schedules"
    (live,) = [p for p in schedules.glob("*.json")]

    # a second identical submission: pending, so its key is in use
    assert main(["submit", "table1", "--rows", "0", "--duration", "0.04",
                 "--queue", queue_dir]) == 0
    capsys.readouterr()
    assert main(["gc", "--queue", queue_dir]) == 0
    assert "removed 0 schedule(s), kept 1" in capsys.readouterr().out
    assert live.is_file()  # the live hash survived

    # drain the pending job; now nothing needs the schedule
    assert main(["worker", "--queue", queue_dir, "--drain"]) == 0
    capsys.readouterr()
    assert main(["gc", "--queue", queue_dir, "--dry-run"]) == 0
    assert "would remove 1 schedule(s)" in capsys.readouterr().out
    assert live.is_file()  # dry run touches nothing
    assert main(["gc", "--queue", queue_dir]) == 0
    assert "removed 1 schedule(s), kept 0" in capsys.readouterr().out
    assert not live.exists()


def test_gc_on_a_nonexistent_queue_is_an_error(tmp_path, capsys):
    assert main(["gc", "--queue", str(tmp_path / "typo")]) == 2
    assert "not a job queue" in capsys.readouterr().err


def test_status_and_gc_know_mid_run_resume_snapshots(tmp_path, capsys):
    """Resume snapshots are tagged ``[resume]`` in ``repro status`` and
    survive ``repro gc`` exactly while a pending/running job could still
    adopt them — an orphaned trail (its run finished or was never
    enqueued) is collected like any other unreferenced entry."""
    from repro.api import ExperimentSpec
    from repro.api.results import spec_run_id
    from repro.sim.checkpoint import CheckpointStore

    queue_dir = str(tmp_path / "q")
    assert main(["submit", "table1", "--rows", "0", "--duration", "0.04",
                 "--queue", queue_dir]) == 0
    capsys.readouterr()
    spec = ExperimentSpec("table1", duration=0.04,
                          options={"rows": (0,)}).sweep()[0]
    store = CheckpointStore(tmp_path / "q" / "artifacts" / "checkpoints")
    live_key = f"resume-{spec_run_id(spec)}-p0-deadbeef-n000003"
    orphan_key = "resume-table1-0000000000-p0-deadbeef-n000001"
    store.put_bytes(live_key, b"snapshot-bytes")
    store.put_bytes(orphan_key, b"snapshot-bytes")

    assert main(["status", "--queue", queue_dir]) == 0
    out = capsys.readouterr().out
    assert f"{live_key}  [resume]  in use" in out
    assert f"{orphan_key}  [resume]  unreferenced" in out

    # gc: the pending job's trail survives, the orphan is collected
    assert main(["gc", "--queue", queue_dir]) == 0
    assert "removed 1 checkpoint(s), kept 1" in capsys.readouterr().out
    assert store.keys() == [live_key]


def test_record_exports_a_standalone_verified_trace(tmp_path, capsys):
    """``repro record`` writes a trace ``load_schedule`` verifies."""
    from repro.core.trace_io import load_schedule

    out = tmp_path / "trace.json"
    assert main(["record", "table1", "--rows", "0", "--duration", "0.05",
                 "--out", str(out)]) == 0
    captured = capsys.readouterr()
    assert f"wrote {out}" in captured.err
    payload = json.loads(captured.out)
    assert payload["experiment"] == "table1"
    assert len(payload["recordings"]) == 1
    schedule = load_schedule(out)  # hash-verified on load
    assert len(schedule) > 0
    assert schedule.threshold > 0


def test_record_directory_mode_writes_one_file_per_recording(tmp_path, capsys):
    out = tmp_path / "traces"
    assert main(["record", "table1", "--rows", "0", "1", "--duration", "0.05",
                 "--out", str(out)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["recordings"]) == 2
    assert sorted(p.stem for p in out.glob("*.json")) == payload["recordings"]


def test_record_rejects_multi_recording_spec_into_single_file(tmp_path, capsys):
    assert main(["record", "table1", "--rows", "0", "1", "--duration", "0.05",
                 "--out", str(tmp_path / "one.json")]) == 2
    assert "names a single file" in capsys.readouterr().err


def test_record_rejects_experiments_without_recordings(tmp_path, capsys):
    assert main(["record", "gadgets",
                 "--out", str(tmp_path / "x.json")]) == 2
    assert "records no replayable schedules" in capsys.readouterr().err


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])
