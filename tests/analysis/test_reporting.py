"""Unit tests for ASCII tables and plots."""

from __future__ import annotations

import pytest

from repro.analysis.plots import ascii_cdf, ascii_series
from repro.analysis.tables import Table


def test_table_renders_aligned_columns():
    t = Table(["name", "value"], title="demo")
    t.add_row(["alpha", 1.5])
    t.add_row(["beta-long-name", 0.00001234])
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "alpha" in out and "beta-long-name" in out
    assert "1.23e-05" in out  # tiny floats go scientific


def test_table_rejects_ragged_rows():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_table_zero_formatting():
    t = Table(["x"])
    t.add_row([0.0])
    assert "0" in t.render().splitlines()[-1]


def test_ascii_cdf_shows_quantiles():
    out = ascii_cdf([1, 2, 3, 4, 5], title="delays")
    assert out.startswith("delays")
    assert "p 50" in out or "p50" in out.replace(" ", "")
    assert "#" in out


def test_ascii_cdf_rejects_empty():
    with pytest.raises(ValueError):
        ascii_cdf([])


def test_ascii_series_downsamples():
    out = ascii_series(range(100), [v % 7 for v in range(100)], max_rows=10)
    assert len(out.splitlines()) == 10


def test_ascii_series_validates_input():
    with pytest.raises(ValueError):
        ascii_series([1, 2], [1])
