"""Unit tests for ASCII tables and plots."""

from __future__ import annotations

import doctest
import json

import pytest

import repro.analysis.tables
from repro.analysis.plots import ascii_cdf, ascii_series
from repro.analysis.tables import Table


def test_table_renders_aligned_columns():
    t = Table(["name", "value"], title="demo")
    t.add_row(["alpha", 1.5])
    t.add_row(["beta-long-name", 0.00001234])
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "alpha" in out and "beta-long-name" in out
    assert "1.23e-05" in out  # tiny floats go scientific


def test_table_rejects_ragged_rows():
    t = Table(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_table_zero_formatting():
    t = Table(["x"])
    t.add_row([0.0])
    assert "0" in t.render().splitlines()[-1]


def test_table_doctests_pass():
    results = doctest.testmod(repro.analysis.tables)
    assert results.attempted > 0
    assert results.failed == 0


def test_table_keeps_raw_rows():
    t = Table(["name", "value"])
    t.add_row(["alpha", 1.5])
    assert t.rows == [["alpha", 1.5]]
    assert t.headers == ["name", "value"]


def test_table_to_json_shares_rows_with_render():
    t = Table(["name", "value"], title="demo")
    t.add_row(["alpha", 0.00001234])
    payload = json.loads(t.to_json())
    assert payload == {
        "title": "demo",
        "headers": ["name", "value"],
        "rows": [["alpha", 0.00001234]],
    }
    # render() formats the very same cell the JSON carries raw
    assert "1.23e-05" in t.render()


def test_table_to_json_coerces_numpy_scalars():
    np = pytest.importorskip("numpy")
    t = Table(["x"])
    t.add_row([np.float64(0.5)])
    assert json.loads(t.to_json())["rows"] == [[0.5]]


def test_table_to_csv_matches_render_formatting():
    t = Table(["name", "value"])
    t.add_row(["with,comma", 0.00001234])
    lines = t.to_csv().splitlines()
    assert lines[0] == "name,value"
    assert lines[1] == '"with,comma",1.23e-05'


def test_ascii_cdf_shows_quantiles():
    out = ascii_cdf([1, 2, 3, 4, 5], title="delays")
    assert out.startswith("delays")
    assert "p 50" in out or "p50" in out.replace(" ", "")
    assert "#" in out


def test_ascii_cdf_rejects_empty():
    with pytest.raises(ValueError):
        ascii_cdf([])


def test_ascii_series_downsamples():
    out = ascii_series(range(100), [v % 7 for v in range(100)], max_rows=10)
    assert len(out.splitlines()) == 10


def test_ascii_series_validates_input():
    with pytest.raises(ValueError):
        ascii_series([1, 2], [1])
