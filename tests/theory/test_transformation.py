"""Tests for the executable Appendix G.2 swap argument."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.transformation import (
    BitJob,
    TransformationError,
    is_feasible,
    simulate_bit_lstf,
    simulate_priority_schedule,
    transform_to_lstf,
)


def _jobs(*specs):
    """specs: (pid, arrival, length, deadline)."""
    return {pid: BitJob(pid, a, l, d) for pid, a, l, d in specs}


class TestPrimitives:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            BitJob(1, 0, 0, 5)
        with pytest.raises(ValueError):
            BitJob(1, 0, 3, 2)  # deadline before earliest completion

    def test_feasibility_checks_arrival_deadline_and_completeness(self):
        jobs = _jobs((1, 0, 2, 3))
        assert is_feasible([1, 1], jobs)
        assert not is_feasible([1], jobs)            # bit missing
        assert is_feasible([1, None, 1], jobs)       # completion == deadline
        assert not is_feasible([None, None, 1, 1], jobs)  # too late

    def test_bits_cannot_be_served_before_arrival(self):
        jobs = _jobs((1, 2, 1, 4))
        assert not is_feasible([1], jobs)
        assert is_feasible([None, None, 1], jobs)

    def test_lstf_simulation_serves_earliest_deadline(self):
        jobs = _jobs((1, 0, 2, 10), (2, 0, 1, 1))
        schedule = simulate_bit_lstf(jobs)
        assert schedule[0] == 2  # the tight deadline goes first


class TestTransformation:
    def test_already_lstf_needs_no_swaps(self):
        jobs = _jobs((1, 0, 1, 1), (2, 0, 1, 5))
        schedule = simulate_bit_lstf(jobs)
        result, swaps = transform_to_lstf(schedule, jobs)
        assert swaps == 0
        assert result == schedule

    def test_reversed_order_gets_swapped(self):
        # Feasible but anti-LSTF: the lax packet goes first.
        jobs = _jobs((1, 0, 1, 2), (2, 0, 1, 4))
        start = [2, 1]
        assert is_feasible(start, jobs)
        result, swaps = transform_to_lstf(start, jobs)
        assert swaps == 1
        assert result == [1, 2]

    def test_infeasible_input_rejected(self):
        jobs = _jobs((1, 0, 1, 1), (2, 0, 1, 2))
        with pytest.raises(TransformationError):
            transform_to_lstf([2, 1], jobs)  # job 1 misses its deadline

    def test_transformation_respects_arrivals(self):
        # Job 2 arrives at slot 1 with a tight deadline; job 1 at 0 lax.
        jobs = _jobs((1, 0, 2, 4), (2, 1, 1, 3))
        start = [1, 1, 2]
        assert is_feasible(start, jobs)
        result, _swaps = transform_to_lstf(start, jobs)
        # Slot 0 cannot hold job 2 (not yet arrived): LSTF = [1, 2, 1].
        assert result == [1, 2, 1]
        assert is_feasible(result, jobs)


def _random_instance(rng: np.random.Generator):
    """A feasible instance by construction: run a random-priority schedule
    first and *derive* each job's deadline from its actual completion —
    exactly how replay slack is derived from a recorded schedule."""
    n = int(rng.integers(2, 6))
    provisional = {}
    for pid in range(1, n + 1):
        arrival = int(rng.integers(0, 6))
        length = int(rng.integers(1, 4))
        provisional[pid] = BitJob(pid, arrival, length, deadline=10_000 + pid)
    priority = {pid: float(rng.random()) for pid in provisional}
    schedule = simulate_priority_schedule(provisional, priority)
    completions = {}
    for slot, pid in enumerate(schedule):
        if pid is not None:
            completions[pid] = slot + 1
    jobs = {
        pid: BitJob(pid, j.arrival, j.length, completions[pid])
        for pid, j in provisional.items()
    }
    # Rebuild the original schedule against the tight deadlines.
    original = simulate_priority_schedule(jobs, priority)
    return jobs, original


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_property_swap_argument_reaches_lstf_feasibly(seed):
    """The lemma, on random feasible instances: the swap loop terminates,
    never breaks feasibility, and lands on a feasible LSTF fixed point."""
    rng = np.random.default_rng(seed)
    jobs, original = _random_instance(rng)
    assert is_feasible(original, jobs)
    transformed, _swaps = transform_to_lstf(original, jobs)
    assert is_feasible(transformed, jobs)
    # Fixed point: no further least-slack violations -> the per-slot
    # choice agrees with bit-LSTF on deadlines of *scheduled* bits.
    lstf = simulate_bit_lstf(jobs)
    assert is_feasible(lstf, jobs)
    # Both serve the same multiset of bits per prefix (work conservation).
    for t in range(max(len(lstf), len(transformed))):
        a = sorted(p for p in transformed[: t + 1] if p is not None)
        b = sorted(p for p in lstf[: t + 1] if p is not None)
        assert len(a) == len(b)
