"""The paper's appendix counter-examples, executed on the simulator.

These tests are the project's deepest correctness anchors: each one runs a
construction from the paper and asserts the *theorem* it was built to
demonstrate.
"""

from __future__ import annotations

import pytest

from repro.theory.blackbox import blackbox_gadget
from repro.theory.lstf_failure import lstf_three_congestion_gadget
from repro.theory.priority_cycle import all_priority_orderings_fail, priority_cycle_gadget


class TestFigure7LstfFailure:
    """Appendix G.3: three congestion points defeat LSTF."""

    def test_original_schedule_matches_the_figure(self):
        g = lstf_three_congestion_gadget()
        schedule = g.record()
        out = {g.packet_name(p.pid): p.output_time for p in schedule.packets}
        assert out == pytest.approx(
            {"a": 5.0, "b": 2.0, "c1": 3.0, "c2": 4.0, "d1": 3.0, "d2": 4.0}
        )

    def test_packet_a_crosses_three_congestion_points_with_slack_2(self):
        g = lstf_three_congestion_gadget()
        schedule = g.record()
        a = next(p for p in schedule.packets if g.packet_name(p.pid) == "a")
        assert a.output_time - a.ingress_time - 3.0 == pytest.approx(2.0)
        assert {"a0", "a1", "a2"} <= set(a.path)

    @pytest.mark.parametrize("mode", ["lstf", "edf", "lstf-preemptive"])
    def test_lstf_family_cannot_replay(self, mode):
        g = lstf_three_congestion_gadget()
        result = g.replay(mode)
        assert not result.perfect
        # The paper's narrative: either c2 or a misses its target.
        assert set(g.overdue_names(result)) <= {"a", "c2"}

    def test_omniscient_replays_perfectly(self):
        g = lstf_three_congestion_gadget()
        assert g.replay("omniscient").perfect


class TestFigure6PriorityCycle:
    """Appendix F: a priority cycle with two congestion points per packet."""

    def test_original_schedule_matches_the_figure(self):
        g = priority_cycle_gadget()
        schedule = g.record()
        out = {g.packet_name(p.pid): p.output_time for p in schedule.packets}
        assert out == pytest.approx({"a": 3.4, "b": 2.5, "c": 3.2})

    def test_every_static_priority_assignment_fails(self):
        assert all_priority_orderings_fail(priority_cycle_gadget())

    def test_lstf_replays_the_cycle_perfectly(self):
        """LSTF's dynamic slack escapes the static-priority trap."""
        g = priority_cycle_gadget()
        result = g.replay("lstf")
        assert result.perfect, g.overdue_names(result)

    def test_omniscient_replays_perfectly(self):
        g = priority_cycle_gadget()
        assert g.replay("omniscient").perfect


class TestFigure5Blackbox:
    """Appendix C: no deterministic UPS under black-box initialisation."""

    def test_critical_packets_have_identical_blackbox_attributes(self):
        views = {}
        for case in (1, 2):
            g = blackbox_gadget(case)
            schedule = g.record()
            views[case] = {
                g.packet_name(p.pid): (p.ingress_time, p.output_time, p.path)
                for p in schedule.packets
                if g.packet_name(p.pid) in ("a", "x")
            }
        assert views[1] == views[2]

    def test_both_cases_are_viable(self):
        """Each case's oracle schedule executes without contradiction and
        is perfectly replayed by the omniscient UPS."""
        for case in (1, 2):
            assert blackbox_gadget(case).replay("omniscient").perfect

    @pytest.mark.parametrize("mode", ["lstf", "edf"])
    def test_no_deterministic_blackbox_candidate_replays_both(self, mode):
        outcomes = [blackbox_gadget(case).replay(mode).perfect for case in (1, 2)]
        assert not all(outcomes)

    def test_priority_with_output_time_fails_at_least_one_case(self):
        outcomes = [
            blackbox_gadget(case).replay("priority").perfect for case in (1, 2)
        ]
        assert not all(outcomes)
