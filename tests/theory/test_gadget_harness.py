"""Unit tests for the gadget harness itself (repro.theory.gadgets)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.theory.gadgets import Gadget, GadgetPacket, bw_for_tx_time
from repro.units import INFINITY


def _tiny_network() -> Network:
    net = Network()
    net.add_host("S")
    net.add_host("D")
    net.add_router("X")
    net.add_link("S", "X", INFINITY, 0.0, bidirectional=False)
    net.add_link("X", "D", bw_for_tx_time(1.0), 0.0, bidirectional=False)
    return net


def _tiny_gadget() -> Gadget:
    return Gadget(
        name="tiny",
        network_factory=_tiny_network,
        packets=[
            GadgetPacket("p", "S", "D", 0.0),
            GadgetPacket("q", "S", "D", 0.0),
        ],
        timetables={"X": {"p": 1.0, "q": 0.0}},
    )


def test_bw_for_tx_time_round_trip():
    from repro.units import tx_time

    assert tx_time(1, bw_for_tx_time(0.5)) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        bw_for_tx_time(0.0)


def test_pids_are_stable_and_bijective():
    g = _tiny_gadget()
    assert g.pid("p") != g.pid("q")
    assert g.packet_name(g.pid("p")) == "p"
    with pytest.raises(KeyError):
        g.packet_name(999)


def test_duplicate_packet_names_rejected():
    with pytest.raises(ConfigurationError):
        Gadget(
            name="dup",
            network_factory=_tiny_network,
            packets=[GadgetPacket("p", "S", "D", 0.0), GadgetPacket("p", "S", "D", 1.0)],
            timetables={"X": {"p": 0.0}},
        )


def test_record_follows_the_timetable():
    g = _tiny_gadget()
    schedule = g.record()
    out = {g.packet_name(p.pid): p.output_time for p in schedule.packets}
    # q is released at 0 (exits at 1); p is held until 1 (exits at 2).
    assert out == pytest.approx({"q": 1.0, "p": 2.0})


def test_record_is_repeatable():
    g = _tiny_gadget()
    a = {p.pid: p.output_time for p in g.record().packets}
    b = {p.pid: p.output_time for p in g.record().packets}
    assert a == b


def test_overdue_names_empty_for_perfect_replay():
    g = _tiny_gadget()
    result = g.replay("omniscient")
    assert result.perfect
    assert g.overdue_names(result) == []
