"""Unit tests for the topology builders."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.topology.fattree import FatTreeConfig, build_fattree
from repro.topology.internet2 import CORE_LINKS, CORE_ROUTERS, Internet2Config, build_internet2
from repro.topology.rocketfuel import RocketFuelConfig, build_rocketfuel
from repro.topology.simple import (
    build_dumbbell,
    build_linear,
    build_parking_lot,
    build_single_switch,
)
from repro.units import GBPS


class TestInternet2:
    def test_paper_dimensions(self):
        """10 core routers, 16 core links (§2.3)."""
        assert len(CORE_ROUTERS) == 10
        assert len(CORE_LINKS) == 16

    def test_default_build_structure(self):
        cfg = Internet2Config(edges_per_core=2, hosts_per_edge=1)
        net = build_internet2(cfg)
        assert len(net.routers) == 10 + 10 * 2  # core + edge routers
        assert len(net.hosts) == 10 * 2

    def test_full_scale_host_count(self):
        net = build_internet2()  # paper scale: 10 edges/core, 1 host/edge
        assert len(net.hosts) == 100

    def test_hop_counts_in_paper_range(self):
        """4..7 hops per packet excluding end hosts."""
        net = build_internet2(Internet2Config(edges_per_core=2))
        hosts = [h.name for h in net.hosts]
        for src, dst in [(hosts[0], hosts[-1]), (hosts[3], hosts[10])]:
            route = net.route(src, dst)
            router_hops = len(route) - 2
            assert 4 <= router_hops <= 7, route

    def test_bandwidth_scale_preserves_ratios(self):
        cfg = Internet2Config(edges_per_core=1).scaled(0.01)
        net = build_internet2(cfg)
        access = net.links[("SEAT", "e_SEAT_0")].bandwidth
        host = net.links[("e_SEAT_0", "h_SEAT_0_0")].bandwidth
        assert host / access == pytest.approx(10.0)
        assert access == pytest.approx(1 * GBPS * 0.01)

    def test_variants_change_the_right_links(self):
        ten_ten = build_internet2(Internet2Config(edges_per_core=1, access_bw=10 * GBPS))
        assert ten_ten.links[("SEAT", "e_SEAT_0")].bandwidth == pytest.approx(10 * GBPS)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_internet2(Internet2Config(edges_per_core=0))
        with pytest.raises(ConfigurationError):
            build_internet2(Internet2Config(bandwidth_scale=0.0))

    def test_deterministic_rebuild(self):
        a = build_internet2(Internet2Config(edges_per_core=2))
        b = build_internet2(Internet2Config(edges_per_core=2))
        assert set(a.nodes) == set(b.nodes)
        assert set(a.links) == set(b.links)


class TestRocketFuel:
    def test_paper_dimensions(self):
        net = build_rocketfuel(RocketFuelConfig(num_hosts=10))
        routers = [r for r in net.routers if r.name.startswith("r_")]
        core_links = [
            (u, v) for (u, v) in net.links
            if u.startswith("r_") and v.startswith("r_") and u < v
        ]
        assert len(routers) == 83
        assert len(core_links) == 131

    def test_half_core_links_slower_than_access(self):
        cfg = RocketFuelConfig(num_hosts=10)
        net = build_rocketfuel(cfg)
        core_bws = [
            link.bandwidth for (u, v), link in net.links.items()
            if u.startswith("r_") and v.startswith("r_") and u < v
        ]
        slower = sum(1 for bw in core_bws if bw < cfg.access_bw)
        assert slower == pytest.approx(len(core_bws) / 2, abs=1)

    def test_all_hosts_reachable(self):
        net = build_rocketfuel(RocketFuelConfig(num_hosts=8))
        hosts = [h.name for h in net.hosts]
        route = net.route(hosts[0], hosts[-1])
        assert route[0] == hosts[0] and route[-1] == hosts[-1]

    def test_deterministic_given_seed(self):
        a = build_rocketfuel(RocketFuelConfig(num_hosts=6, seed=5))
        b = build_rocketfuel(RocketFuelConfig(num_hosts=6, seed=5))
        assert set(a.links) == set(b.links)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            build_rocketfuel(RocketFuelConfig(num_core_links=10))
        with pytest.raises(ConfigurationError):
            build_rocketfuel(RocketFuelConfig(num_hosts=1))


class TestFatTree:
    def test_k4_dimensions(self):
        cfg = FatTreeConfig(k=4)
        net = build_fattree(cfg)
        assert len(net.hosts) == cfg.num_hosts == 16
        # 4 core + 8 agg + 8 edge switches
        assert len(net.routers) == 20

    def test_full_bisection_uniform_bandwidth(self):
        net = build_fattree(FatTreeConfig(k=4))
        bws = {link.bandwidth for link in net.links.values()}
        assert len(bws) == 1

    def test_inter_pod_route_goes_through_core(self):
        net = build_fattree(FatTreeConfig(k=4))
        route = net.route("h_0_0_0", "h_3_1_1")
        assert any(n.startswith("c_") for n in route)

    def test_intra_edge_route_stays_local(self):
        net = build_fattree(FatTreeConfig(k=4))
        route = net.route("h_0_0_0", "h_0_0_1")
        assert route == ("h_0_0_0", "e_0_0", "h_0_0_1")

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fattree(FatTreeConfig(k=3))


class TestSimpleTopologies:
    def test_single_switch(self):
        net = build_single_switch(num_senders=3)
        assert len(net.hosts) == 4  # 3 senders + sink
        assert net.route("s_0", "sink") == ("s_0", "SW", "sink")

    def test_dumbbell(self):
        net = build_dumbbell(num_pairs=2)
        assert net.route("s_0", "d_1") == ("s_0", "L", "R", "d_1")

    def test_parking_lot_long_path(self):
        net = build_parking_lot(num_hops=3)
        route = net.route("h_in_0", "h_out_3")
        assert [n for n in route if n.startswith("SW")] == [
            "SW_0", "SW_1", "SW_2", "SW_3"
        ]

    def test_linear(self):
        net = build_linear(num_switches=3)
        assert net.route("src", "dst") == ("src", "SW_0", "SW_1", "SW_2", "dst")

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            build_single_switch(num_senders=0)
        with pytest.raises(ConfigurationError):
            build_dumbbell(num_pairs=0)
        with pytest.raises(ConfigurationError):
            build_parking_lot(num_hops=0)
        with pytest.raises(ConfigurationError):
            build_linear(num_switches=0)
