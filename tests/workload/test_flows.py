"""Unit tests for flow arrival generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.distributions import ExponentialSize
from repro.workload.flows import PoissonWorkload, long_lived_flows, poisson_flows

HOSTS = [f"h{i}" for i in range(6)]


def _workload(**kwargs):
    defaults = dict(utilization=0.5, reference_bandwidth=10e6, duration=2.0, seed=1)
    defaults.update(kwargs)
    return PoissonWorkload(**defaults)


class TestPoissonFlows:
    def test_flows_within_duration_and_sorted(self):
        flows = poisson_flows(HOSTS, ExponentialSize(20_000), _workload())
        assert all(0 <= f.start < 2.0 for f in flows)
        starts = [f.start for f in flows]
        assert starts == sorted(starts)

    def test_no_self_flows_and_valid_hosts(self):
        flows = poisson_flows(HOSTS, ExponentialSize(20_000), _workload())
        for f in flows:
            assert f.src != f.dst
            assert f.src in HOSTS and f.dst in HOSTS

    def test_unique_flow_ids(self):
        flows = poisson_flows(HOSTS, ExponentialSize(20_000), _workload())
        fids = [f.fid for f in flows]
        assert len(set(fids)) == len(fids)

    def test_offered_load_tracks_utilization(self):
        """Total bytes ~= hosts * util * bw * duration / 8."""
        wl = _workload(utilization=0.6, duration=20.0)
        flows = poisson_flows(HOSTS, ExponentialSize(20_000), wl)
        offered = sum(f.size for f in flows) * 8 / (20.0 * len(HOSTS))
        assert offered == pytest.approx(0.6 * 10e6, rel=0.15)

    def test_deterministic_given_seed(self):
        a = poisson_flows(HOSTS, ExponentialSize(20_000), _workload(seed=9))
        b = poisson_flows(HOSTS, ExponentialSize(20_000), _workload(seed=9))
        assert [(f.src, f.dst, f.size, f.start) for f in a] == [
            (f.src, f.dst, f.size, f.start) for f in b
        ]

    def test_different_seed_differs(self):
        a = poisson_flows(HOSTS, ExponentialSize(20_000), _workload(seed=1))
        b = poisson_flows(HOSTS, ExponentialSize(20_000), _workload(seed=2))
        assert [f.start for f in a] != [f.start for f in b]

    def test_needs_two_hosts(self):
        with pytest.raises(WorkloadError):
            poisson_flows(["only"], ExponentialSize(20_000), _workload())

    def test_degenerate_workload_rejected(self):
        with pytest.raises(WorkloadError):
            _workload(utilization=0.0)
        with pytest.raises(WorkloadError):
            _workload(duration=-1.0)
        with pytest.raises(WorkloadError):
            _workload(reference_bandwidth=0.0)


class TestLongLivedFlows:
    def test_jittered_starts(self):
        flows = long_lived_flows([("a", "b"), ("c", "d")], size=10**8, jitter=0.005)
        assert all(0 <= f.start <= 0.005 for f in flows)
        assert all(f.size == 10**8 for f in flows)

    def test_weights_applied(self):
        flows = long_lived_flows(
            [("a", "b"), ("c", "d")], size=10**6, weights=[1.0, 3.0]
        )
        assert [f.weight for f in flows if f.src == "c"] == [3.0]

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            long_lived_flows([("a", "b")], size=10**6, weights=[1.0, 2.0])

    def test_empty_pairs_rejected(self):
        with pytest.raises(WorkloadError):
            long_lived_flows([], size=10**6)
