"""Unit + property tests for the flow-size distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.distributions import (
    BoundedPareto,
    EmpiricalCdf,
    ExponentialSize,
    datacenter_distribution,
    distribution_names,
    internet_distribution,
    make_distribution,
    web_search_distribution,
)


class TestBoundedPareto:
    def test_samples_stay_in_bounds(self):
        dist = BoundedPareto(alpha=1.2, low=1_000, high=50_000)
        rng = np.random.default_rng(1)
        samples = [dist.sample(rng) for _ in range(2_000)]
        assert min(samples) >= 1_000
        assert max(samples) <= 50_000

    def test_empirical_mean_matches_analytic(self):
        dist = BoundedPareto(alpha=1.3, low=1_000, high=1_000_000)
        rng = np.random.default_rng(2)
        samples = [dist.sample(rng) for _ in range(60_000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.08)

    def test_heavy_tail_shape(self):
        """Most flows are small; most bytes are in the large flows."""
        dist = BoundedPareto(alpha=1.1, low=1_000, high=10_000_000)
        rng = np.random.default_rng(3)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        median = np.median(samples)
        assert median < dist.mean() / 2

    def test_deterministic_given_seed(self):
        dist = BoundedPareto()
        a = [dist.sample(np.random.default_rng(7)) for _ in range(10)]
        b = [dist.sample(np.random.default_rng(7)) for _ in range(10)]
        assert a == b

    @given(st.floats(min_value=-2.0, max_value=0.0))
    def test_rejects_nonpositive_alpha(self, alpha):
        with pytest.raises(WorkloadError):
            BoundedPareto(alpha=alpha)

    def test_rejects_bad_bounds(self):
        with pytest.raises(WorkloadError):
            BoundedPareto(low=100, high=100)


class TestEmpiricalCdf:
    def test_preset_distributions_sample_in_range(self):
        rng = np.random.default_rng(4)
        for dist in (web_search_distribution(), datacenter_distribution(),
                     internet_distribution()):
            samples = [dist.sample(rng) for _ in range(500)]
            assert min(samples) >= 1
            assert max(samples) <= dist._sizes[-1]

    def test_mean_matches_montecarlo(self):
        dist = internet_distribution()
        rng = np.random.default_rng(5)
        samples = [dist.sample(rng) for _ in range(60_000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_rejects_decreasing_points(self):
        with pytest.raises(WorkloadError):
            EmpiricalCdf([(100, 0.0), (50, 1.0)])

    def test_rejects_cdf_not_ending_at_one(self):
        with pytest.raises(WorkloadError):
            EmpiricalCdf([(100, 0.0), (200, 0.9)])

    def test_rejects_single_point(self):
        with pytest.raises(WorkloadError):
            EmpiricalCdf([(100, 1.0)])


class TestExponentialSize:
    def test_mean(self):
        dist = ExponentialSize(30_000)
        rng = np.random.default_rng(6)
        samples = [dist.sample(rng) for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(30_000, rel=0.05)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(WorkloadError):
            ExponentialSize(0)


@settings(max_examples=25)
@given(
    alpha=st.floats(min_value=0.5, max_value=3.0),
    low=st.integers(min_value=100, max_value=10_000),
    span=st.integers(min_value=2, max_value=1_000),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_bounded_pareto_always_in_range(alpha, low, span, seed):
    dist = BoundedPareto(alpha=alpha, low=low, high=low * span)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        assert low <= dist.sample(rng) <= low * span


class TestNamedRegistry:
    def test_catalogue_contents(self):
        assert distribution_names() == (
            "data-mining", "exponential", "internet", "pareto", "web-search",
        )

    def test_empirical_preset_names_match_registry_keys(self):
        for name in ("web-search", "data-mining", "internet"):
            assert make_distribution(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_distribution("zipf")


# Every registered distribution, whatever its family, must uphold the
# sampler contract the scenario generators rely on: integer sizes >= 1,
# byte-identical streams per seed, and a mean() the samples agree with.

_names = st.sampled_from(distribution_names())


@settings(max_examples=30)
@given(name=_names, seed=st.integers(min_value=0, max_value=2**31))
def test_property_registered_sizes_positive_ints(name, seed):
    dist = make_distribution(name)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        size = dist.sample(rng)
        assert isinstance(size, int)
        assert size >= 1


@settings(max_examples=30)
@given(name=_names, seed=st.integers(min_value=0, max_value=2**31))
def test_property_registered_seeded_determinism(name, seed):
    a = [make_distribution(name).sample(np.random.default_rng(seed))
         for _ in range(10)]
    b = [make_distribution(name).sample(np.random.default_rng(seed))
         for _ in range(10)]
    assert a == b


@pytest.mark.parametrize("name", distribution_names())
def test_registered_sample_mean_tracks_declared_mean(name):
    dist = make_distribution(name)
    rng = np.random.default_rng(11)
    samples = [dist.sample(rng) for _ in range(60_000)]
    assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.1)
