"""Edge cases of the bench-diff gate (``benchmarks/perf/compare.py``).

The comparer is a CI gate: its classification rules (new benches never
fail, removed benches are reported, the threshold is strict-less-than)
and its error paths (malformed or missing BENCH files must die with a
readable message, not a traceback) are contract, so they get locked
here.  The script is not a package module — it is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks/perf/compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare)


def _bench(name: str, ops_per_sec: float, scale: int = 1000) -> dict:
    seconds = scale / ops_per_sec if ops_per_sec else 0.0
    return {"name": name, "scale": scale, "ops": scale,
            "seconds": seconds, "ops_per_sec": ops_per_sec}


def _write(tmp_path: Path, filename: str, *runs: dict) -> Path:
    path = tmp_path / filename
    path.write_text(json.dumps({"schema_version": 1, "runs": list(runs)}))
    return path


def _run(label: str, *benches: dict) -> dict:
    return {"label": label, "benches": list(benches)}


class TestClassification:
    def test_new_bench_is_reported_but_never_fails(self, tmp_path, capsys):
        before = _write(tmp_path, "a.json", _run("b", _bench("old", 100.0)))
        after = _write(tmp_path, "b.json",
                       _run("c", _bench("old", 100.0),
                            _bench("fresh", 50.0)))
        assert compare.main([str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "fresh@1000" in out and "new" in out

    def test_removed_bench_is_listed_not_compared(self, tmp_path, capsys):
        before = _write(tmp_path, "a.json",
                        _run("b", _bench("keep", 100.0),
                             _bench("gone", 100.0)))
        after = _write(tmp_path, "b.json", _run("c", _bench("keep", 100.0)))
        assert compare.main([str(before), str(after)]) == 0
        assert "removed, not compared: gone@1000" in capsys.readouterr().out

    def test_renamed_bench_is_new_plus_removed(self, tmp_path, capsys):
        # a rename has no matching key, so it must classify as one new
        # and one removed — never as a regression of either
        before = _write(tmp_path, "a.json",
                        _run("b", _bench("sweep-serial", 100.0)))
        after = _write(tmp_path, "b.json",
                       _run("c", _bench("sweep-scratch", 10.0)))
        assert compare.main([str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "sweep-scratch@1000" in out and "new" in out
        assert "removed, not compared: sweep-serial@1000" in out

    def test_same_name_different_scale_does_not_match(self, tmp_path):
        before = _write(tmp_path, "a.json",
                        _run("b", _bench("x", 100.0, scale=1000)))
        after = _write(tmp_path, "b.json",
                       _run("c", _bench("x", 1.0, scale=2000)))
        # no shared key, candidate's is new → passes
        assert compare.main([str(before), str(after)]) == 0

    def test_no_shared_and_no_new_keys_is_an_error(self, tmp_path):
        before = _write(tmp_path, "a.json", _run("b", _bench("x", 100.0)))
        after = _write(tmp_path, "b.json", _run("c", _bench("y", 100.0)))
        with pytest.raises(SystemExit, match="share no bench keys"):
            compare.main([str(before), str(after), "--only", "z-"])


class TestThresholdBoundary:
    def test_ratio_exactly_at_threshold_passes(self, tmp_path):
        before = _write(tmp_path, "a.json", _run("b", _bench("x", 1000.0)))
        after = _write(tmp_path, "b.json", _run("c", _bench("x", 900.0)))
        # regression is strict: ratio < threshold, so 0.90 == 0.90 is OK
        assert compare.main(
            [str(before), str(after), "--threshold", "0.90"]) == 0

    def test_ratio_just_below_threshold_fails(self, tmp_path):
        before = _write(tmp_path, "a.json", _run("b", _bench("x", 1000.0)))
        after = _write(tmp_path, "b.json", _run("c", _bench("x", 899.0)))
        assert compare.main(
            [str(before), str(after), "--threshold", "0.90"]) == 1

    def test_zero_baseline_never_divides(self, tmp_path):
        before = _write(tmp_path, "a.json", _run("b", _bench("x", 0.0)))
        after = _write(tmp_path, "b.json", _run("c", _bench("x", 1.0)))
        assert compare.main([str(before), str(after)]) == 0


class TestMalformedInput:
    def test_missing_file_is_a_readable_error(self, tmp_path):
        ok = _write(tmp_path, "a.json", _run("b", _bench("x", 1.0)))
        with pytest.raises(SystemExit, match="cannot read"):
            compare.main([str(tmp_path / "nope.json"), str(ok)])

    def test_invalid_json_is_a_readable_error(self, tmp_path):
        ok = _write(tmp_path, "a.json", _run("b", _bench("x", 1.0)))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            compare.main([str(ok), str(bad)])

    def test_non_object_document_is_a_readable_error(self, tmp_path):
        ok = _write(tmp_path, "a.json", _run("b", _bench("x", 1.0)))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit, match="not a BENCH document"):
            compare.main([str(bad), str(ok)])

    def test_empty_runs_is_a_readable_error(self, tmp_path):
        ok = _write(tmp_path, "a.json", _run("b", _bench("x", 1.0)))
        empty = _write(tmp_path, "empty.json")
        with pytest.raises(SystemExit, match="has no runs"):
            compare.main([str(empty), str(ok)])

    def test_unknown_run_label_lists_available(self, tmp_path):
        before = _write(tmp_path, "a.json", _run("pr7", _bench("x", 1.0)))
        after = _write(tmp_path, "b.json", _run("pr8", _bench("x", 1.0)))
        with pytest.raises(SystemExit, match="available.*pr7"):
            compare.main(
                [str(before), str(after), "--run-before", "pr99"])


class TestRunSelection:
    def test_last_run_is_the_default(self, tmp_path, capsys):
        doc = _write(tmp_path, "a.json",
                     _run("pr7", _bench("x", 100.0)),
                     _run("pr8", _bench("x", 200.0)))
        assert compare.main([str(doc), str(doc)]) == 0
        out = capsys.readouterr().out
        assert "run 'pr8'" in out

    def test_label_substring_picks_the_run(self, tmp_path):
        doc = _write(tmp_path, "a.json",
                     _run("pr7", _bench("x", 1000.0)),
                     _run("pr8", _bench("x", 100.0)))
        # pr8 vs pr7 inside one file: a 10x drop must trip the gate
        assert compare.main(
            [str(doc), str(doc), "--run-before", "pr7",
             "--run-after", "pr8"]) == 1
