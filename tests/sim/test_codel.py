"""Unit tests for the CoDel AQM (dequeue-side head drops)."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.sim.aqm import CoDelAqm
from repro.sim.network import Network
from repro.transport.tcp import install_tcp_flows
from repro.units import MBPS
from tests.conftest import make_packet


class TestCoDelStateMachine:
    def test_no_drops_while_sojourn_below_target(self):
        aqm = CoDelAqm(target=0.005, interval=0.1)
        for k in range(50):
            assert not aqm.on_dequeue(make_packet(), sojourn=0.001, now=k * 0.01)
        assert aqm.drops == 0

    def test_no_drop_before_a_full_interval_above_target(self):
        aqm = CoDelAqm(target=0.005, interval=0.1)
        assert not aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.0)
        assert not aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.05)
        assert aqm.drops == 0

    def test_drop_after_interval_of_standing_queue(self):
        aqm = CoDelAqm(target=0.005, interval=0.1)
        aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.0)   # arms the clock
        assert aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.11)
        assert aqm.drops == 1

    def test_drop_spacing_shrinks_with_count(self):
        aqm = CoDelAqm(target=0.005, interval=0.1)
        aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.0)
        assert aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.11)
        first_next = aqm._drop_next
        # Keep the queue bad: next drop fires at the scheduled time.
        assert not aqm.on_dequeue(make_packet(), sojourn=0.02, now=first_next - 1e-6)
        assert aqm.on_dequeue(make_packet(), sojourn=0.02, now=first_next)
        # interval/sqrt(2) < interval: spacing tightened.
        assert aqm._drop_next - first_next < 0.1

    def test_recovery_exits_dropping_state(self):
        aqm = CoDelAqm(target=0.005, interval=0.1)
        aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.0)
        aqm.on_dequeue(make_packet(), sojourn=0.02, now=0.11)
        assert aqm._dropping
        assert not aqm.on_dequeue(make_packet(), sojourn=0.001, now=0.2)
        assert not aqm._dropping

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CoDelAqm(target=0.0)
        with pytest.raises(ConfigurationError):
            CoDelAqm(interval=-1.0)


class TestCoDelOnPort:
    def test_codel_controls_standing_queue_delay(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0005)
        net.add_link("SW", "b", 8 * MBPS, 0.0005)
        port = net.nodes["SW"].ports["b"]
        aqm = CoDelAqm(target=0.005, interval=0.05)
        port.set_aqm(aqm)
        flow = Flow(1, "a", "b", 500_000, start=0.0)
        stats = install_tcp_flows(net, [flow], min_rto=0.05)
        net.run(until=30.0)
        assert stats.completed == 1
        assert aqm.drops > 0
        # The controlled queue keeps most delivered packets' SW waits in
        # the vicinity of the target, far below the uncontrolled case.
        waits = [
            max(r.hop_waits) for r in net.tracer.delivered_records()
            if r.size > 64 and r.hop_waits
        ]
        waits.sort()
        median = waits[len(waits) // 2]
        assert median < 0.05  # uncontrolled queue would sit far higher

    def test_codel_composes_with_fq(self):
        from repro.schedulers import FqScheduler

        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0005)
        net.add_link("SW", "b", 8 * MBPS, 0.0005)
        port = net.nodes["SW"].ports["b"]
        port.set_scheduler(FqScheduler())
        port.set_aqm(CoDelAqm(target=0.005, interval=0.05))
        flows = [Flow(i, "a", "b", 150_000, start=0.0) for i in (1, 2)]
        stats = install_tcp_flows(net, flows, min_rto=0.05)
        net.run(until=30.0)
        assert stats.completed == 2
