"""Unit tests for the non-preemptive output port."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import FifoScheduler, LstfScheduler, TimetableScheduler
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _simple_net(bottleneck_bw=8 * MBPS, prop=0.0, host_bw=8000 * MBPS):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", host_bw, 0.0)
    net.add_link("SW", "b", bottleneck_bw, prop)
    return net


def test_store_and_forward_timing():
    """1000 B at 8 Mbps = 1 ms serialisation, plus propagation."""
    net = _simple_net(prop=0.004)
    p = make_packet()
    net.inject_at(0.0, p)
    net.run()
    rec = net.tracer.records[p.pid]
    # host tx (1000B @ 8Gbps = 1us) + SW tx (1ms) + prop (4ms)
    assert rec.exit == pytest.approx(1e-6 + 0.001 + 0.004)


def test_back_to_back_packets_serialise():
    net = _simple_net()
    packets = [make_packet(created=0.0) for _ in range(3)]
    for p in packets:
        net.inject_at(0.0, p)
    net.run()
    exits = sorted(net.tracer.records[p.pid].exit for p in packets)
    assert exits[1] - exits[0] == pytest.approx(0.001)
    assert exits[2] - exits[1] == pytest.approx(0.001)


def test_queue_wait_accounting():
    net = _simple_net()
    first = make_packet()
    second = make_packet()
    net.inject_at(0.0, first)
    net.inject_at(0.0, second)
    net.run()
    rec2 = net.tracer.records[second.pid]
    # Second packet waits one transmission time at SW (and a hair at the host).
    assert sum(rec2.hop_waits) == pytest.approx(0.001 + 1e-6, rel=1e-3)
    assert rec2.congestion_points() == 2


def test_tail_drop_on_full_buffer():
    net = _simple_net()
    net.nodes["SW"].ports["b"].set_buffer(2500)  # room for two 1000B packets
    packets = [make_packet() for _ in range(4)]
    for p in packets:
        net.inject_at(0.0, p)
    net.run()
    delivered = net.tracer.delivered_count()
    # One transmits immediately, two queue, one is tail-dropped.
    assert delivered == 3
    assert net.tracer.drops == 1
    dropped = [r for r in net.tracer.records.values() if r.dropped_at]
    assert dropped and dropped[0].dropped_at == "SW"


def test_lstf_drop_victim_is_highest_slack():
    net = _simple_net()
    net.install_uniform(LstfScheduler)
    net.nodes["SW"].ports["b"].set_buffer(2500)
    urgent = [make_packet(slack=0.0) for _ in range(3)]
    lax = make_packet(slack=99.0)
    # Arrival order: two urgent, one lax, one urgent; buffer fits 2 queued.
    net.inject_at(0.0, urgent[0])
    net.inject_at(0.0, urgent[1])
    net.inject_at(0.0, lax)
    net.inject_at(0.0, urgent[2])
    net.run()
    lax_rec = net.tracer.records[lax.pid]
    assert lax_rec.dropped_at == "SW"
    assert all(net.tracer.records[p.pid].delivered for p in urgent)


def test_buffer_rejects_nonpositive():
    net = _simple_net()
    with pytest.raises(ConfigurationError):
        net.nodes["SW"].ports["b"].set_buffer(0)


def test_cannot_swap_scheduler_on_active_port():
    net = _simple_net()
    port = net.nodes["SW"].ports["b"]
    net.inject_at(0.0, make_packet())
    net.inject_at(0.0, make_packet())
    net.engine.run(until=0.0005)  # first packet in flight, second queued
    with pytest.raises(ConfigurationError):
        port.set_scheduler(FifoScheduler())


def test_timetable_port_waits_for_release_time():
    """A non-work-conserving scheduler keeps the port idle until release."""
    net = _simple_net()
    p = make_packet()
    sw_port = net.nodes["SW"].ports["b"]
    sw_port.set_scheduler(TimetableScheduler({p.pid: 0.005}))
    net.inject_at(0.0, p)
    net.run()
    rec = net.tracer.records[p.pid]
    assert rec.exit == pytest.approx(0.005 + 0.001)
    # The wait before transmission is the idle-until-release time.
    assert max(rec.hop_waits) == pytest.approx(0.005, rel=1e-3)


def test_zero_delay_link_is_synchronous():
    """Packets cross infinitely fast links within the producing event."""
    import math

    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("R1")
    net.add_router("R2")
    net.add_link("a", "R1", math.inf, 0.0)
    net.add_link("R1", "R2", math.inf, 0.0)
    net.add_link("R2", "b", 8 * MBPS, 0.0)
    p = make_packet()
    net.inject_at(0.0, p)
    net.run()
    rec = net.tracer.records[p.pid]
    assert rec.exit == pytest.approx(0.001)
    assert rec.path == ["a", "R1", "R2", "b"]
