"""Unit tests for the ``ENGINE_PERF`` accumulator (PR 8 satellite).

The accumulator is process-global and single-threaded by design; every
test snapshots and restores it so the suite stays order-independent.
"""

from __future__ import annotations

import pytest

from repro.sim.checkpoint import restore_snapshot, snapshot_network
from repro.sim.engine import ENGINE_PERF, Engine, EnginePerf
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


@pytest.fixture(autouse=True)
def _isolated_engine_perf():
    events, wall_s = ENGINE_PERF.events, ENGINE_PERF.wall_s
    ENGINE_PERF.reset()
    yield
    ENGINE_PERF.events, ENGINE_PERF.wall_s = events, wall_s


def test_record_accumulates_and_reset_zeroes():
    perf = EnginePerf()
    perf.record(10, 2.0)
    perf.record(5, 0.5)
    assert perf.events == 15
    assert perf.wall_s == 2.5
    perf.reset()
    assert (perf.events, perf.wall_s) == (0, 0.0)


def test_events_per_sec_is_zero_with_no_elapsed_wall_time():
    perf = EnginePerf()
    assert perf.events_per_sec == 0.0
    # Restore credits arrive with zero wall time; the rate must not
    # divide by zero even though events are non-zero.
    perf.record(1000, 0.0)
    assert perf.events_per_sec == 0.0
    perf.record(1000, 0.5)
    assert perf.events_per_sec == 2000 / 0.5


def test_paused_discards_work_inside_the_block():
    perf = EnginePerf()
    perf.record(3, 1.0)
    with perf.paused():
        perf.record(100, 9.0)
    assert (perf.events, perf.wall_s) == (3, 1.0)


def test_paused_nests_and_restores_each_level():
    perf = EnginePerf()
    perf.record(1, 1.0)
    with perf.paused():
        perf.record(10, 1.0)
        with perf.paused():
            perf.record(100, 1.0)
        assert perf.events == 11  # inner block rolled back to its entry
    assert perf.events == 1


def test_paused_restores_on_exception():
    perf = EnginePerf()
    perf.record(2, 1.0)
    with pytest.raises(RuntimeError):
        with perf.paused():
            perf.record(50, 1.0)
            raise RuntimeError("boom")
    assert (perf.events, perf.wall_s) == (2, 1.0)


def test_engine_run_reports_into_the_global_accumulator():
    engine = Engine()
    for i in range(4):
        engine.schedule(0.001 * i, lambda: None)
    engine.run()
    assert ENGINE_PERF.events == 4
    assert ENGINE_PERF.wall_s > 0.0


def test_sampler_events_never_reach_the_accumulator():
    engine = Engine()
    engine.schedule(0.002, lambda: None)
    engine.schedule_sample(0.001, lambda: None)
    engine.run()
    assert engine.events_processed == 1
    assert ENGINE_PERF.events == 1


def _warm_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    for _ in range(3):
        net.inject_at(0.0, make_packet())
    net.run(until=0.001)
    return net


def test_restore_credit_makes_branched_legs_report_full_event_counts():
    # From-scratch leg: the whole run is live accumulation.
    baseline = _warm_net()
    baseline.run()
    expected = ENGINE_PERF.events
    assert expected == baseline.engine.events_processed

    # Branched leg: warm-up under paused() (as the checkpoint builder
    # does), then the restore credit plus the live branch events must
    # add up to the same total.
    ENGINE_PERF.reset()
    with ENGINE_PERF.paused():
        warm = _warm_net()
        snap = snapshot_network(warm)
    branch = restore_snapshot(snap)
    branch.run()
    assert ENGINE_PERF.events == expected
