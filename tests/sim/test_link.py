"""Unit tests for links."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.link import Link


def test_tx_time_is_bits_over_bandwidth():
    link = Link("a", "b", bandwidth=1e9, propagation=0.001)
    assert link.tx_time(1500) == pytest.approx(12e-6)


def test_infinite_bandwidth_means_zero_tx_time():
    link = Link("a", "b", bandwidth=math.inf, propagation=0.0)
    assert link.tx_time(10**9) == 0.0


def test_traversal_time_adds_propagation():
    link = Link("a", "b", bandwidth=8e6, propagation=0.004)
    assert link.traversal_time(1000) == pytest.approx(0.005)


@pytest.mark.parametrize("bandwidth", [0.0, -1.0])
def test_rejects_nonpositive_bandwidth(bandwidth):
    with pytest.raises(ConfigurationError):
        Link("a", "b", bandwidth=bandwidth, propagation=0.0)


def test_rejects_negative_propagation():
    with pytest.raises(ConfigurationError):
        Link("a", "b", bandwidth=1e6, propagation=-0.1)
