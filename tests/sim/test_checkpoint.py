"""Unit tests for the engine/network checkpoint protocol (sim layer).

Covers the three layers of :mod:`repro.sim.checkpoint` plus the engine's
own ``checkpoint()``/``restore()`` hooks:

* engine state round-trips through plain dicts *and* pickle, including
  the identity-compared cancellable sentinel (swapped for a marker while
  serialised, swapped back on restore);
* the on-disk format is hash-verified — truncation, corruption, foreign
  files, and version skew all fail loudly as
  :class:`~repro.errors.CheckpointError` *before* anything is unpickled;
* :class:`~repro.sim.checkpoint.CheckpointStore` builds once, heals
  corrupt entries as misses, prunes unreferenced keys, and audit-logs
  every actual build.
"""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.core.packet import packet_id_counter, set_packet_id_counter
from repro.errors import CheckpointError
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    Snapshot,
    active_checkpoint_store,
    load_checkpoint,
    restore_snapshot,
    save_checkpoint,
    snapshot_from_bytes,
    snapshot_network,
    snapshot_to_bytes,
    use_checkpoint_store,
)
from repro.sim.engine import ENGINE_PERF, Engine
from repro.sim.network import Network
from repro.units import MBPS


def _fire_log_engine() -> tuple[Engine, list]:
    """An engine with plain, cancellable, and deferred events pending.

    Callbacks are bound methods of one list (never closures over the
    engine), so a restored copy fires into the same log and a *pickled*
    copy fires into its own unpickled list.
    """
    engine = Engine()
    log: list = []
    engine.defer(partial(log.append, "d"))  # deferred beats the heap
    engine.schedule(0.002, log.append, "a")
    engine.schedule(0.004, log.append, "b")
    handle = engine.schedule_cancellable(0.006, log.append, "c")
    return engine, log, handle


class TestEngineCheckpointRestore:
    def test_round_trip_preserves_fire_order(self):
        engine, log, _handle = _fire_log_engine()
        state = engine.checkpoint()
        fresh = Engine()
        fresh.restore(state)
        fresh.run()
        assert log == ["d", "a", "b", "c"]
        assert fresh.now == 0.006

    def test_checkpoint_state_is_picklable(self):
        engine, log, _handle = _fire_log_engine()
        # the raw heap holds the identity-compared _CANCELLABLE sentinel;
        # checkpoint() must swap it for something serialisable
        state = pickle.loads(pickle.dumps(engine.checkpoint()))
        fresh = Engine()
        fresh.restore(state)
        fresh.run()
        # the pickled copy fires into its *own* unpickled list
        assert log == []
        assert fresh.events_processed == 3  # deferred flushes aren't events

    def test_cancel_after_checkpoint_only_affects_the_original(self):
        engine, log, handle = _fire_log_engine()
        state = pickle.loads(pickle.dumps(engine.checkpoint()))
        handle.cancel()
        engine.run()
        assert log == ["d", "a", "b"]  # original honoured the cancel
        fresh = Engine()
        fresh.restore(state)
        fresh.run()
        assert fresh.events_processed == 3  # the clone's handle still fired

    def test_restore_resumes_mid_run(self):
        engine, log, _handle = _fire_log_engine()
        engine.run(until=0.003)
        assert log == ["d", "a"]
        state = engine.checkpoint()
        fresh = Engine()
        fresh.restore(state)
        assert fresh.now == engine.now
        fresh.run()
        assert log == ["d", "a", "b", "c"]


def _tiny_network(until: float = 0.05) -> Network:
    """A two-host network with a little traffic simulated."""
    from repro.transport.udp import install_udp_flows
    from repro.workload.flows import Flow

    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.001)
    install_udp_flows(
        net,
        [Flow(fid=1, src="a", dst="b", size=30_000, start=0.0)],
    )
    net.run(until=until)
    return net


class TestSnapshotRoundTrip:
    def test_save_load_preserves_summary_fields(self, tmp_path):
        net = _tiny_network()
        snap = snapshot_network(net, description="tiny")
        path = tmp_path / "tiny.ckpt"
        save_checkpoint(snap, path)
        loaded = load_checkpoint(path)
        assert loaded.time == snap.time
        assert loaded.engine_events == snap.engine_events
        assert loaded.packet_counter == snap.packet_counter
        assert loaded.description == "tiny"

    def test_restored_network_continues_like_the_original(self, tmp_path):
        net = _tiny_network()
        snap = snapshot_network(net)
        path = tmp_path / "c.ckpt"
        save_checkpoint(snap, path)
        restored = restore_snapshot(load_checkpoint(path))
        net.run()
        restored.run()
        a = [(r.pid, r.exit) for r in net.tracer.records.values()]
        b = [(r.pid, r.exit) for r in restored.tracer.records.values()]
        assert a == b

    def test_restore_reinstalls_packet_counter(self):
        net = _tiny_network()
        snap = snapshot_network(net)
        before = packet_id_counter()
        set_packet_id_counter(before + 10_000)  # unrelated later traffic
        restore_snapshot(snap)
        assert packet_id_counter() == snap.packet_counter
        set_packet_id_counter(before)

    def test_restore_credits_engine_events(self):
        net = _tiny_network()
        snap = snapshot_network(net)
        baseline = ENGINE_PERF.events
        restore_snapshot(snap)
        assert ENGINE_PERF.events == baseline + snap.engine_events


class TestFormatVerification:
    def _bytes(self) -> bytes:
        return snapshot_to_bytes(snapshot_network(_tiny_network()))

    def test_truncated_payload_is_a_checkpoint_error(self, tmp_path):
        data = self._bytes()
        path = tmp_path / "t.ckpt"
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(CheckpointError, match="hash"):
            load_checkpoint(path)

    def test_corrupt_payload_is_a_checkpoint_error(self):
        data = bytearray(self._bytes())
        data[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="hash"):
            snapshot_from_bytes(bytes(data))

    def test_foreign_file_is_a_checkpoint_error(self, tmp_path):
        path = tmp_path / "not.ckpt"
        path.write_bytes(b'{"something": "else"}\npayload')
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(path)
        path.write_bytes(b"no newline at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_version_skew_is_a_checkpoint_error(self):
        data = self._bytes()
        head, _, payload = data.partition(b"\n")
        skewed = head.replace(
            f'"version": {CHECKPOINT_VERSION}'.encode(),
            f'"version": {CHECKPOINT_VERSION + 1}'.encode(),
        )
        with pytest.raises(CheckpointError, match="version"):
            snapshot_from_bytes(skewed + b"\n" + payload)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")


class TestCheckpointStore:
    def _snapshot(self) -> Snapshot:
        return snapshot_network(_tiny_network())

    def test_put_get_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snap = self._snapshot()
        store.put("k1", snap)
        assert store.has("k1")
        got = store.get("k1")
        assert got is not None and got.time == snap.time
        assert store.keys() == ["k1"]

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put("k1", self._snapshot())
        path = store.path("k1")
        path.write_bytes(path.read_bytes()[:-50])
        assert store.get("k1") is None  # miss, not an exception

    def test_get_or_build_builds_exactly_once(self, tmp_path):
        store = CheckpointStore(tmp_path)
        calls = []

        def builder() -> Snapshot:
            calls.append(1)
            return self._snapshot()

        first = store.get_or_build("k", builder)
        second = store.get_or_build("k", builder)
        assert len(calls) == 1
        assert store.built_keys() == ["k"]
        # every consumer gets a fresh graph, never a shared one
        assert first.network is not second.network

    def test_get_or_build_heals_truncated_entry(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.get_or_build("k", self._snapshot)
        path = store.path("k")
        path.write_bytes(path.read_bytes()[:-50])
        again = store.get_or_build("k", self._snapshot)
        assert again is not None
        assert store.get("k") is not None  # the entry healed on disk
        assert store.built_keys() == ["k", "k"]  # the rebuild was logged

    def test_build_never_leaks_into_engine_perf(self, tmp_path):
        store = CheckpointStore(tmp_path)
        baseline = ENGINE_PERF.events
        store.get_or_build("k", self._snapshot)
        assert ENGINE_PERF.events == baseline

    def test_prune_keeps_in_use_and_logs_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.get_or_build("keep", self._snapshot)
        store.get_or_build("drop", self._snapshot)
        removed = store.prune({"keep"})
        assert removed == ["drop"]
        assert store.keys() == ["keep"]
        # the audit log records history, not current contents
        assert store.built_keys() == ["drop", "keep"] or store.built_keys() == [
            "keep", "drop",
        ]

    def test_use_checkpoint_store_nests_and_restores(self, tmp_path):
        assert active_checkpoint_store() is None
        outer = CheckpointStore(tmp_path / "outer")
        inner = CheckpointStore(tmp_path / "inner")
        with use_checkpoint_store(outer):
            assert active_checkpoint_store() is outer
            with use_checkpoint_store(inner):
                assert active_checkpoint_store() is inner
            with use_checkpoint_store(None):
                assert active_checkpoint_store() is None
            assert active_checkpoint_store() is outer
        assert active_checkpoint_store() is None
