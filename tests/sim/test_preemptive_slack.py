"""PreemptivePort slack accounting under repeated pause/resume.

Appendix D's invariant: slack drains whenever the last bit is not on the
wire — pause time is charged, transmission time is free.  For a packet
that enters the bottleneck port at ``ti``, exits at ``te`` and needs
``tx`` seconds of serialisation (however fragmented by preemptions):

    queue_wait == te − ti − tx
    slack_out  == slack_in − queue_wait

These tests drive one bottleneck through adversarial preemption patterns
— including packets paused several times — and check the identity for
every packet, plus work conservation and run-to-run determinism.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.packet import Packet, reset_packet_ids
from repro.schedulers import LstfScheduler
from repro.sim.network import Network
from repro.units import MBPS

BOTTLENECK_BPS = 8 * MBPS  # 1000 B = 1 ms


def _preemptive_net() -> Network:
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    # Infinite-bandwidth uplink: packets reach the bottleneck exactly at
    # their injection instant with untouched slack, so the accounting
    # identity below has no first-hop term.
    net.add_link("a", "SW", math.inf, 0.0)
    net.add_link("SW", "b", BOTTLENECK_BPS, 0.0)
    net.use_preemptive_ports(LstfScheduler)
    return net


def _tx(size: int) -> float:
    return 8.0 * size / BOTTLENECK_BPS


def _assert_slack_identity(net: Network, packets, injections, slacks) -> None:
    for packet in packets:
        rec = net.tracer.records[packet.pid]
        assert rec.exit is not None, f"packet {packet.pid} never exited"
        wait = rec.exit - injections[packet.pid] - _tx(packet.size)
        assert wait >= -1e-12
        assert packet.queue_wait == pytest.approx(wait, abs=1e-12)
        assert packet.slack == pytest.approx(slacks[packet.pid] - wait, abs=1e-9)


def test_triple_preemption_resumes_with_remaining_time_and_charges_pauses():
    net = _preemptive_net()
    lax = Packet(1, 1000, "a", "b", 0.0)
    lax.slack = 50e-3
    urgents = []
    for k in range(3):
        packet = Packet(2 + k, 1000, "a", "b", 0.0)
        packet.slack = 0.0
        urgents.append(packet)
    net.inject_at(0.0, lax)
    # Each urgent packet lands while lax is (re)transmitting, pausing it:
    # lax transmits 0.0–0.3, 1.3–1.6, 2.6–2.9, then finishes 3.9–4.0... —
    # fragments of 0.3/0.3/0.3/0.1 ms around three 1 ms urgent slots.
    net.inject_at(0.3e-3, urgents[0])
    net.inject_at(1.6e-3, urgents[1])
    net.inject_at(2.9e-3, urgents[2])
    net.run()
    rec = net.tracer.records[lax.pid]
    # 4 packets x 1 ms back to back: lax's last bit leaves at 4 ms.
    assert rec.exit == pytest.approx(4.0e-3, rel=1e-9)
    # 3 ms of pause across three preemptions, 1 ms on the wire.
    assert lax.queue_wait == pytest.approx(3.0e-3, rel=1e-9)
    assert lax.slack == pytest.approx(50e-3 - 3.0e-3, rel=1e-9)
    for k, packet in enumerate(urgents):
        assert packet.queue_wait == pytest.approx(0.0, abs=1e-12)
        assert packet.slack == pytest.approx(0.0, abs=1e-12)


def test_pause_time_is_charged_but_transmission_time_is_not():
    net = _preemptive_net()
    lax = Packet(1, 2000, "a", "b", 0.0)  # 2 ms of serialisation
    lax.slack = 10e-3
    urgent = Packet(2, 1000, "a", "b", 0.0)
    urgent.slack = 0.0
    net.inject_at(0.0, lax)
    net.inject_at(1.0e-3, urgent)  # pauses lax halfway
    net.run()
    # lax: 0–1 ms transmitting, 1–2 ms paused, 2–3 ms transmitting.
    assert net.tracer.records[lax.pid].exit == pytest.approx(3.0e-3, rel=1e-9)
    assert lax.queue_wait == pytest.approx(1.0e-3, rel=1e-9)
    assert lax.slack == pytest.approx(10e-3 - 1.0e-3, rel=1e-9)


@pytest.mark.parametrize("seed", range(15))
def test_property_slack_identity_under_random_preemption_storms(seed):
    """Many packets, random sizes/slacks/arrivals: the Appendix D identity
    holds for every packet, and total service is work-conserving."""
    reset_packet_ids()
    rng = random.Random(seed)
    net = _preemptive_net()
    packets, injections, slacks = [], {}, {}
    clock = 0.0
    for i in range(30):
        size = rng.choice((500, 1000, 1500, 2000))
        packet = Packet(i + 1, size, "a", "b", 0.0)
        packet.slack = rng.randrange(0, 40) * 1e-3
        clock += rng.randrange(0, 12) * 0.1e-3
        net.inject_at(clock, packet)
        packets.append(packet)
        injections[packet.pid] = clock
        slacks[packet.pid] = packet.slack
    net.run()
    _assert_slack_identity(net, packets, injections, slacks)
    # Work conservation: the port is never idle while work is pending, so
    # the last exit can't beat (first arrival + total serialisation).
    total_tx = sum(_tx(p.size) for p in packets)
    last_exit = max(net.tracer.records[p.pid].exit for p in packets)
    first_in = min(injections.values())
    assert last_exit >= first_in + total_tx - 1e-12
    busy_possible = max(injections.values()) + total_tx
    assert last_exit <= busy_possible + 1e-9


@pytest.mark.parametrize("seed", range(8))
def test_property_preemptive_runs_are_deterministic(seed):
    """Identical preemption storms produce byte-identical exit times."""

    def run_once():
        reset_packet_ids()
        rng = random.Random(seed)
        net = _preemptive_net()
        clock = 0.0
        pids = []
        for i in range(25):
            packet = Packet(i + 1, rng.choice((500, 1000, 1500)), "a", "b", 0.0)
            packet.slack = rng.randrange(0, 20) * 1e-3
            clock += rng.randrange(0, 10) * 0.1e-3
            net.inject_at(clock, packet)
            pids.append(packet.pid)
        net.run()
        return [(pid, net.tracer.records[pid].exit) for pid in pids]

    assert run_once() == run_once()
