"""Unit tests for hosts and routers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def test_inject_requires_matching_source():
    net = _net()
    packet = make_packet(src="b", dst="a")
    with pytest.raises(ConfigurationError):
        net.host("a").inject(packet)


def test_inject_rejects_self_addressed_packet():
    net = _net()
    packet = make_packet(src="a", dst="a")
    with pytest.raises(ConfigurationError):
        net.host("a").inject(packet)


def test_router_refuses_terminating_traffic():
    net = _net()
    packet = make_packet(dst="SW")
    net.inject_at(0.0, packet)
    with pytest.raises(SimulationError):
        net.run()


def test_host_delivers_to_registered_receiver():
    net = _net()
    seen = []

    class Agent:
        def on_packet(self, packet):
            seen.append(packet.pid)

    net.host("b").register_receiver(flow_id=1, agent=Agent())
    p = make_packet(flow_id=1)
    net.inject_at(0.0, p)
    net.run()
    assert seen == [p.pid]


def test_host_routes_acks_to_sender_agent():
    net = _net()
    data_seen, ack_seen = [], []

    class Recorder:
        def __init__(self, sink):
            self.sink = sink

        def on_packet(self, packet):
            self.sink.append(packet.pid)

    net.host("b").register_receiver(1, Recorder(data_seen))
    net.host("b").register_sender(1, Recorder(ack_seen))
    data = make_packet(flow_id=1)
    ack = make_packet(flow_id=1, is_ack=True)
    net.inject_at(0.0, data)
    net.inject_at(0.0, ack)
    net.run()
    assert data_seen == [data.pid]
    assert ack_seen == [ack.pid]


def test_duplicate_agent_registration_rejected():
    net = _net()

    class Agent:
        def on_packet(self, packet):  # pragma: no cover - never called
            pass

    net.host("b").register_receiver(1, Agent())
    with pytest.raises(ConfigurationError):
        net.host("b").register_receiver(1, Agent())


def test_fallback_deliver_callback():
    net = _net()
    seen = []
    net.host("b").on_deliver = lambda p: seen.append(p.pid)
    p = make_packet(flow_id=42)
    net.inject_at(0.0, p)
    net.run()
    assert seen == [p.pid]


def test_path_position_advances_per_hop():
    net = _net()
    p = make_packet()
    net.inject_at(0.0, p)
    net.run()
    assert p.path_pos == 2  # a (0) -> SW (1) -> b (2)
    assert net.tracer.records[p.pid].path == ["a", "SW", "b"]
