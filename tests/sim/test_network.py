"""Unit tests for the network container: topology, routing, tmin."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.schedulers import FifoScheduler, LstfScheduler
from repro.sim.network import Network
from repro.sim.node import Router
from repro.units import GBPS, MBPS
from tests.conftest import make_packet


def _diamond() -> Network:
    """a - (N|S) - b diamond with hosts at both ends."""
    net = Network()
    net.add_host("ha")
    net.add_host("hb")
    for r in ("A", "B", "N", "S"):
        net.add_router(r)
    net.add_link("ha", "A", GBPS, 0.001)
    net.add_link("A", "N", GBPS, 0.001)
    net.add_link("A", "S", GBPS, 0.001)
    net.add_link("N", "B", GBPS, 0.001)
    net.add_link("S", "B", GBPS, 0.001)
    net.add_link("B", "hb", GBPS, 0.001)
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ConfigurationError):
            net.add_router("a")

    def test_link_to_unknown_node_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ConfigurationError):
            net.add_link("a", "ghost", GBPS)

    def test_self_loop_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ConfigurationError):
            net.add_link("a", "a", GBPS)

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", GBPS)
        with pytest.raises(ConfigurationError):
            net.add_link("a", "b", GBPS)

    def test_asymmetric_bandwidth(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", GBPS, bandwidth_reverse=100 * MBPS)
        assert net.links[("a", "b")].bandwidth == GBPS
        assert net.links[("b", "a")].bandwidth == 100 * MBPS

    def test_host_accessor_type_checks(self):
        net = Network()
        net.add_router("r")
        with pytest.raises(ConfigurationError):
            net.host("r")


class TestRouting:
    def test_route_endpoints_inclusive(self):
        net = _diamond()
        route = net.route("ha", "hb")
        assert route[0] == "ha" and route[-1] == "hb"
        assert len(route) == 5  # ha A {N|S} B hb

    def test_routing_is_deterministic(self):
        routes = {tuple(_diamond().route("ha", "hb")) for _ in range(5)}
        assert len(routes) == 1
        # Lexicographic tie-break picks N over S.
        assert "N" in next(iter(routes))

    def test_route_to_self(self):
        net = _diamond()
        assert net.route("ha", "ha") == ("ha",)

    def test_no_route_raises(self):
        net = _diamond()
        net.add_host("island")
        with pytest.raises(RoutingError):
            net.route("ha", "island")

    def test_unknown_node_raises(self):
        net = _diamond()
        with pytest.raises(RoutingError):
            net.route("ha", "nowhere")


class TestTmin:
    def test_tmin_sums_tx_and_prop(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 8 * MBPS, 0.002)   # 1000B: 1ms + 2ms
        net.add_link("SW", "b", 4 * MBPS, 0.003)   # 1000B: 2ms + 3ms
        assert net.tmin("a", "b", 1000) == pytest.approx(0.008)

    def test_tmin_is_additive_along_the_path(self):
        net = _diamond()
        size = 1500
        route = net.route("ha", "hb")
        mid = route[2]
        lhs = net.tmin("ha", "hb", size)
        # Appendix A: tmin(src,dst) = tmin(src,mid) + tmin(mid,dst)
        # with the link-sum convention (no double-counted transmission).
        rhs = net.path_tmin(size, route[: 3]) + net.path_tmin(size, route[2:])
        assert lhs == pytest.approx(rhs)

    def test_tmin_matches_uncongested_traversal(self):
        net = _diamond()
        p = make_packet(src="ha", dst="hb", size=1500)
        net.inject_at(0.0, p)
        net.run()
        rec = net.tracer.records[p.pid]
        assert rec.exit - rec.created == pytest.approx(net.tmin("ha", "hb", 1500))

    def test_bottleneck_tx_time(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", 8 * MBPS)
        assert net.bottleneck_tx_time(1000) == pytest.approx(0.001)


class TestInstallation:
    def test_install_uniform_replaces_all_ports(self):
        net = _diamond()
        net.install_uniform(LstfScheduler)
        for node in net.nodes.values():
            for port in node.ports.values():
                assert port.scheduler.name == "lstf"

    def test_install_selectively(self):
        net = _diamond()
        net.install_schedulers(
            lambda node, _peer: LstfScheduler() if node == "A" else None
        )
        assert net.nodes["A"].ports["N"].scheduler.name == "lstf"
        assert net.nodes["B"].ports["hb"].scheduler.name == "fifo"

    def test_set_buffers_with_filter(self):
        net = _diamond()
        net.set_buffers(5000, node_filter=lambda n: isinstance(n, Router))
        assert net.nodes["A"].ports["N"].buffer_bytes == 5000
        assert net.nodes["ha"].ports["A"].buffer_bytes == float("inf")
