"""Unit tests for packet tracing."""

from __future__ import annotations

import pytest

from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 80 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def test_record_lifecycle():
    net = _net()
    p = make_packet()
    net.inject_at(0.0, p)
    net.run()
    rec = net.tracer.records[p.pid]
    assert rec.delivered
    assert rec.path == ["a", "SW", "b"]
    assert len(rec.hop_tx) == 2  # a and SW transmit; b only receives
    assert rec.total_delay == pytest.approx(rec.exit - rec.created)


def test_total_delay_raises_for_undelivered():
    net = _net()
    p = make_packet()
    net.inject_at(0.0, p)
    net.run(until=1e-5)  # still in flight
    rec = net.tracer.records[p.pid]
    assert not rec.delivered
    with pytest.raises(ValueError):
        _ = rec.total_delay


def test_congestion_points_counts_positive_waits():
    net = _net()
    first, second, third = (make_packet() for _ in range(3))
    for p in (first, second, third):
        net.inject_at(0.0, p)
    net.run()
    assert net.tracer.records[first.pid].congestion_points() == 0
    assert net.tracer.records[third.pid].congestion_points() >= 1


def test_disabled_tracer_records_nothing():
    net = _net()
    net.tracer.enabled = False
    net.inject_at(0.0, make_packet())
    net.run()
    assert len(net.tracer) == 0


def test_disabled_tracer_does_not_count_drops():
    """A disabled tracer is a pure no-op — including the drops counter."""
    from repro.sim.tracer import Tracer

    tracer = Tracer(enabled=False)
    tracer.on_drop(make_packet(), "SW")
    assert tracer.drops == 0
    enabled = Tracer()
    enabled.on_drop(make_packet(), "SW")
    assert enabled.drops == 1


def test_hooks_tolerate_packets_without_a_trace_record():
    """Packets created while disabled survive an enable mid-run.

    Every hook must null-check ``packet.trace`` the same way: the packet
    simply stays invisible, rather than crashing the simulation.
    """
    from repro.sim.tracer import Tracer

    tracer = Tracer(enabled=False)
    p = make_packet()
    tracer.on_created(p, "a")  # disabled: no record, p.trace stays None
    assert p.trace is None
    tracer.enabled = True
    tracer.on_hop(p, "SW")
    tracer.on_tx_start(p, wait=0.0, now=0.0)
    tracer.on_exit(p, now=1.0)
    tracer.on_drop(p, "SW")
    assert len(tracer) == 0
    assert tracer.drops == 1  # the drop happened, even if unattributed


def test_delivered_records_iterates_only_exited():
    net = _net()
    p1, p2 = make_packet(), make_packet()
    net.inject_at(0.0, p1)
    net.inject_at(5.0, p2)
    net.run(until=1.0)
    delivered = list(net.tracer.delivered_records())
    assert [r.pid for r in delivered] == [p1.pid]
    assert net.tracer.delivered_count() == 1
