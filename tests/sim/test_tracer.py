"""Unit tests for packet tracing."""

from __future__ import annotations

import pytest

from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 80 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def test_record_lifecycle():
    net = _net()
    p = make_packet()
    net.inject_at(0.0, p)
    net.run()
    rec = net.tracer.records[p.pid]
    assert rec.delivered
    assert rec.path == ["a", "SW", "b"]
    assert len(rec.hop_tx) == 2  # a and SW transmit; b only receives
    assert rec.total_delay == pytest.approx(rec.exit - rec.created)


def test_total_delay_raises_for_undelivered():
    net = _net()
    p = make_packet()
    net.inject_at(0.0, p)
    net.run(until=1e-5)  # still in flight
    rec = net.tracer.records[p.pid]
    assert not rec.delivered
    with pytest.raises(ValueError):
        _ = rec.total_delay


def test_congestion_points_counts_positive_waits():
    net = _net()
    first, second, third = (make_packet() for _ in range(3))
    for p in (first, second, third):
        net.inject_at(0.0, p)
    net.run()
    assert net.tracer.records[first.pid].congestion_points() == 0
    assert net.tracer.records[third.pid].congestion_points() >= 1


def test_disabled_tracer_records_nothing():
    net = _net()
    net.tracer.enabled = False
    net.inject_at(0.0, make_packet())
    net.run()
    assert len(net.tracer) == 0


def test_delivered_records_iterates_only_exited():
    net = _net()
    p1, p2 = make_packet(), make_packet()
    net.inject_at(0.0, p1)
    net.inject_at(5.0, p2)
    net.run(until=1.0)
    delivered = list(net.tracer.delivered_records())
    assert [r.pid for r in delivered] == [p1.pid]
    assert net.tracer.delivered_count() == 1
