"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(2.0, order.append, "late")
    engine.schedule(1.0, order.append, "early")
    engine.schedule(3.0, order.append, "last")
    engine.run()
    assert order == ["early", "late", "last"]
    assert engine.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(5.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [5.0]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_cancelled_events_do_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    engine.run()
    assert fired == []
    handle.cancel()  # idempotent


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(10.0, fired.append, "b")
    engine.run(until=5.0)
    assert fired == ["a"]
    assert engine.now == 5.0
    engine.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_are_processed():
    engine = Engine()
    fired = []

    def chain():
        fired.append(engine.now)
        if engine.now < 3.0:
            engine.schedule(1.0, chain)

    engine.schedule(1.0, chain)
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_stop_halts_processing():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: (fired.append("a"), engine.stop()))
    engine.schedule(2.0, fired.append, "b")
    engine.run()
    assert fired == ["a"]
    engine.run()
    assert fired == ["a", "b"]


def test_pending_and_processed_counters():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_events == 2
    engine.run()
    assert engine.pending_events == 0
    assert engine.events_processed == 2


class TestDeferredPhase:
    """The two-phase (events, then decisions) semantics of Engine.defer."""

    def test_deferred_runs_after_all_same_time_events(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (order.append("ev1"), engine.defer(lambda: order.append("dec"))))
        engine.schedule(1.0, order.append, "ev2")
        engine.schedule(2.0, order.append, "later")
        engine.run()
        assert order == ["ev1", "ev2", "dec", "later"]

    def test_deferred_callbacks_flush_fifo(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (engine.defer(lambda: order.append("d1")),
                                      engine.defer(lambda: order.append("d2"))))
        engine.run()
        assert order == ["d1", "d2"]

    def test_deferred_may_defer_more_work_same_instant(self):
        engine = Engine()
        order = []

        def second():
            order.append(("second", engine.now))

        def first():
            order.append(("first", engine.now))
            engine.defer(second)

        engine.schedule(1.0, engine.defer, first)
        engine.run()
        assert order == [("first", 1.0), ("second", 1.0)]

    def test_deferred_flushes_before_clock_advances(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: engine.defer(lambda: order.append(engine.now)))
        engine.schedule(1.5, lambda: order.append(engine.now))
        engine.run()
        assert order == [1.0, 1.5]

    def test_deferred_drains_when_heap_empties(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: engine.defer(lambda: seen.append("done")))
        engine.run()
        assert seen == ["done"]
