"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(2.0, order.append, "late")
    engine.schedule(1.0, order.append, "early")
    engine.schedule(3.0, order.append, "last")
    engine.run()
    assert order == ["early", "late", "last"]
    assert engine.now == 3.0


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(5.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [5.0]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_cancelled_events_do_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule_cancellable(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    engine.run()
    assert fired == []
    assert engine.events_processed == 0  # cancelled events don't count
    handle.cancel()  # idempotent


def test_fast_path_schedule_returns_no_handle():
    """The hot path allocates no EventHandle and returns nothing."""
    engine = Engine()
    assert engine.schedule(1.0, lambda: None) is None
    assert engine.schedule_at(2.0, lambda: None) is None
    engine.run()
    assert engine.events_processed == 2


def test_cancellable_and_fast_events_share_the_clock():
    engine = Engine()
    order = []
    engine.schedule(1.0, order.append, "fast")
    engine.schedule_cancellable(1.0, order.append, "cancellable")
    engine.schedule(1.0, order.append, "fast2")
    engine.run()
    assert order == ["fast", "cancellable", "fast2"]


def test_event_can_cancel_a_later_event_mid_run():
    engine = Engine()
    fired = []
    victim = engine.schedule_cancellable(2.0, fired.append, "victim")
    engine.schedule(1.0, victim.cancel)
    engine.run()
    assert fired == []
    assert engine.events_processed == 1


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(10.0, fired.append, "b")
    engine.run(until=5.0)
    assert fired == ["a"]
    assert engine.now == 5.0
    engine.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_are_processed():
    engine = Engine()
    fired = []

    def chain():
        fired.append(engine.now)
        if engine.now < 3.0:
            engine.schedule(1.0, chain)

    engine.schedule(1.0, chain)
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_stop_halts_processing():
    engine = Engine()
    fired = []
    engine.schedule(1.0, lambda: (fired.append("a"), engine.stop()))
    engine.schedule(2.0, fired.append, "b")
    engine.run()
    assert fired == ["a"]
    engine.run()
    assert fired == ["a", "b"]


def test_pending_and_processed_counters():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_events == 2
    engine.run()
    assert engine.pending_events == 0
    assert engine.events_processed == 2


class TestDeferredPhase:
    """The two-phase (events, then decisions) semantics of Engine.defer."""

    def test_deferred_runs_after_all_same_time_events(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (order.append("ev1"), engine.defer(lambda: order.append("dec"))))
        engine.schedule(1.0, order.append, "ev2")
        engine.schedule(2.0, order.append, "later")
        engine.run()
        assert order == ["ev1", "ev2", "dec", "later"]

    def test_deferred_callbacks_flush_fifo(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: (engine.defer(lambda: order.append("d1")),
                                      engine.defer(lambda: order.append("d2"))))
        engine.run()
        assert order == ["d1", "d2"]

    def test_deferred_may_defer_more_work_same_instant(self):
        engine = Engine()
        order = []

        def second():
            order.append(("second", engine.now))

        def first():
            order.append(("first", engine.now))
            engine.defer(second)

        engine.schedule(1.0, engine.defer, first)
        engine.run()
        assert order == [("first", 1.0), ("second", 1.0)]

    def test_deferred_flushes_before_clock_advances(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: engine.defer(lambda: order.append(engine.now)))
        engine.schedule(1.5, lambda: order.append(engine.now))
        engine.run()
        assert order == [1.0, 1.5]

    def test_deferred_drains_when_heap_empties(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: engine.defer(lambda: seen.append("done")))
        engine.run()
        assert seen == ["done"]


class TestRunUntilHorizon:
    """Deferred decisions queued at exactly ``until`` must flush before the
    clock is pinned — a scheduling decision at the horizon is still part of
    the horizon's instant (the simultaneity convention)."""

    def test_deferred_at_exactly_until_flushes_before_pinning(self):
        engine = Engine()
        seen = []
        engine.schedule_at(1.0, lambda: engine.defer(lambda: seen.append(engine.now)))
        engine.schedule_at(2.5, seen.append, "beyond-horizon")
        engine.run(until=1.0)
        assert seen == [1.0]
        assert engine.now == 1.0
        assert engine.pending_deferred == 0
        assert engine.pending_events == 1  # the 2.5 s event stays queued

    def test_decision_at_until_can_schedule_work_at_until(self):
        """Port-style: a decision deferred at the horizon starts a
        zero-delay transmission that must also complete at the horizon."""
        engine = Engine()
        order = []

        def decide():
            order.append(("decide", engine.now))
            engine.schedule(0.0, lambda: order.append(("tx-done", engine.now)))

        engine.schedule_at(1.0, lambda: engine.defer(decide))
        engine.schedule_at(9.0, order.append, "never")
        engine.run(until=1.0)
        assert order == [("decide", 1.0), ("tx-done", 1.0)]
        assert engine.now == 1.0

    def test_clock_pins_to_until_when_nothing_is_pending(self):
        engine = Engine()
        engine.run(until=4.25)
        assert engine.now == 4.25

    def test_deferred_before_horizon_runs_at_its_own_instant(self):
        engine = Engine()
        seen = []
        engine.schedule_at(0.5, lambda: engine.defer(lambda: seen.append(engine.now)))
        engine.schedule_at(7.0, seen.append, "late")
        engine.run(until=2.0)
        assert seen == [0.5]
        assert engine.now == 2.0

    def test_horizon_break_preserves_event_order_across_runs(self):
        engine = Engine()
        order = []
        for t in (0.5, 1.0, 1.0, 3.0):
            engine.schedule_at(t, order.append, t)
        engine.run(until=1.0)
        assert order == [0.5, 1.0, 1.0]
        engine.run()
        assert order == [0.5, 1.0, 1.0, 3.0]


class TestCancelDeterminism:
    """Property-style: interleaved schedule/cancel streams fire identically
    across repeated runs — the record/replay byte-identity contract."""

    @staticmethod
    def _run_once(seed: int):
        import random

        rng = random.Random(seed)
        engine = Engine()
        fired = []
        handles = []
        for i in range(400):
            delay = rng.random() * 10.0
            if rng.random() < 0.5:
                handles.append(
                    engine.schedule_cancellable(delay, fired.append, ("c", i))
                )
            else:
                engine.schedule(delay, fired.append, ("f", i))
            if handles and rng.random() < 0.3:
                handles.pop(rng.randrange(len(handles))).cancel()
        engine.run()
        return fired, engine.events_processed

    @pytest.mark.parametrize("seed", range(30))
    def test_interleaved_cancels_fire_identically(self, seed):
        first = self._run_once(seed)
        second = self._run_once(seed)
        assert first == second
        fired, processed = first
        assert processed == len(fired)

    @pytest.mark.parametrize("seed", range(10))
    def test_mid_run_cancellations_are_deterministic(self, seed):
        import random

        def run_once():
            rng = random.Random(seed)
            engine = Engine()
            fired = []
            handles = []
            for i in range(200):
                t = rng.random() * 5.0
                handles.append(engine.schedule_cancellable(t, fired.append, i))
            # events that cancel other events mid-run
            for _ in range(60):
                t = rng.random() * 5.0
                victim = handles[rng.randrange(len(handles))]
                engine.schedule(t, victim.cancel)
            engine.run()
            return fired

        assert run_once() == run_once()
