"""Units for the resume layer: policy grammar, slice primitive, audit log.

The end-to-end resume contract (kill a real process, resume, compare
bytes) lives in ``tests/cluster/test_resume_points.py``; this file locks
the small parts it is built from — :class:`CheckpointPolicy` parsing and
validation, :meth:`Engine.run_bounded` slice-boundary semantics, and the
``checkpoints.log`` audit-line schema that the build-once and
resumed-at-all assertions read.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.sim.checkpoint import CheckpointStore
from repro.sim.engine import Engine
from repro.sim.resume import CheckpointPolicy


class TestCheckpointPolicyParse:
    def test_bare_number_is_sim_seconds(self):
        policy = CheckpointPolicy.parse("0.05")
        assert policy.every_sim_s == 0.05
        assert policy.every_events is None
        assert policy.keep == 2

    def test_seconds_suffix(self):
        assert CheckpointPolicy.parse("0.05s").every_sim_s == 0.05

    def test_events_suffix(self):
        policy = CheckpointPolicy.parse("5000ev")
        assert policy.every_events == 5000
        assert policy.every_sim_s is None

    def test_full_combo(self):
        policy = CheckpointPolicy.parse("0.05s,5000ev,keep=3")
        assert policy == CheckpointPolicy(
            every_sim_s=0.05, every_events=5000, keep=3)

    def test_blank_terms_are_ignored(self):
        assert CheckpointPolicy.parse("0.05s, ,5000ev") == \
            CheckpointPolicy.parse("0.05s,5000ev")

    @pytest.mark.parametrize("text", ["bogus", "12ms", "keep=lots", "evev"])
    def test_unparseable_term_is_a_configuration_error(self, text):
        with pytest.raises(ConfigurationError, match="checkpoint policy"):
            CheckpointPolicy.parse(text)

    def test_no_trigger_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="trigger"):
            CheckpointPolicy.parse("keep=3")

    @pytest.mark.parametrize("kwargs", [
        dict(every_sim_s=0.0),
        dict(every_sim_s=-1.0),
        dict(every_events=0),
        dict(every_sim_s=0.05, keep=0),
    ])
    def test_invalid_values_are_configuration_errors(self, kwargs):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(**kwargs)


class _Log:
    """Picklable event log for slice tests."""

    def __init__(self) -> None:
        self.seen: list[tuple[float, int]] = []

    def note(self, engine: Engine, tag: int) -> None:
        self.seen.append((engine.now, tag))

    def decide(self, engine: Engine, tag: int) -> None:
        engine.defer(lambda: self.seen.append((engine.now, -tag)))


class TestRunBounded:
    def _build(self) -> tuple[Engine, _Log]:
        engine, log = Engine(), _Log()
        for tag in range(8):
            engine.schedule_at(tag * 0.01, log.note, engine, tag)
            engine.schedule_at(tag * 0.01, log.decide, engine, tag + 100)
        return engine, log

    def test_slices_replay_the_straight_run(self):
        straight_engine, straight = self._build()
        straight_engine.run(until=0.2)

        engine, log = self._build()
        while engine._heap:
            engine.run_bounded(until=0.2, max_events=3)
        engine.now = 0.2  # the phase owner pins the clock, once
        assert log.seen == straight.seen
        assert engine.events_processed == straight_engine.events_processed

    def test_never_pins_the_clock(self):
        engine, _ = self._build()
        engine.run_bounded(until=5.0)
        assert engine.now == pytest.approx(0.07)

    def test_only_breaks_with_deferred_queue_empty(self):
        engine, _ = self._build()
        while engine._heap:
            engine.run_bounded(max_events=1)
            # a snapshot taken here must never have to serialise
            # mid-instant decision closures
            assert not engine._deferred


class TestAuditLogSchema:
    """Lock the ``checkpoints.log`` line format other layers parse."""

    def test_known_ops(self):
        assert CheckpointStore.LOG_OPS == ("put", "prune", "roll", "resume")

    def test_line_format_is_op_key_pid(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.log("resume", "resume-r1-p0-abcd1234-n000002")
        line = (tmp_path / CheckpointStore.LOG_NAME).read_text().strip()
        assert line == (
            f"resume resume-r1-p0-abcd1234-n000002 pid={os.getpid()}"
        )

    def test_unknown_op_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint log op"):
            CheckpointStore(tmp_path).log("evict", "some-key")

    def test_legacy_opless_lines_parse_as_put(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / CheckpointStore.LOG_NAME).write_text(
            "warmup-old-key pid=123\n")
        store.log("roll", "resume-r1-p0-abcd1234-n000000")
        assert store.log_entries() == [
            ("put", "warmup-old-key"),
            ("roll", "resume-r1-p0-abcd1234-n000000"),
        ]
        # roll/prune/resume history never inflates the build count
        assert store.built_keys() == ["warmup-old-key"]

    def test_prune_logs_each_pruned_hash(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for key in ("keep-me", "drop-a", "drop-b"):
            store.put_bytes(key, b"payload-" + key.encode())
        removed = store.prune({"keep-me"})
        assert sorted(removed) == ["drop-a", "drop-b"]
        pruned = [key for op, key in store.log_entries() if op == "prune"]
        assert sorted(pruned) == ["drop-a", "drop-b"]
        assert store.keys() == ["keep-me"]

    def test_discard_logs_under_the_callers_op(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put_bytes("resume-r1-p0-abcd1234-n000000", b"x")
        store.discard(["resume-r1-p0-abcd1234-n000000"], op="roll")
        assert ("roll", "resume-r1-p0-abcd1234-n000000") in store.log_entries()
