"""Unit tests for the preemptive-resume port."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import FifoScheduler, LstfScheduler
from repro.sim.network import Network
from repro.sim.port import PreemptivePort
from repro.units import MBPS
from tests.conftest import make_packet


def _preemptive_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8000 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)  # 1000 B = 1 ms
    net.use_preemptive_ports(LstfScheduler)
    return net


def test_urgent_arrival_preempts_in_service_packet():
    net = _preemptive_net()
    lax = make_packet(slack=10e-3)
    urgent = make_packet(slack=0.0)
    net.inject_at(0.0, lax)
    net.inject_at(0.5e-3, urgent)
    net.run()
    lax_exit = net.tracer.records[lax.pid].exit
    urgent_exit = net.tracer.records[urgent.pid].exit
    # Urgent transmits 0.5ms..1.5ms; lax resumes and finishes at 2.0ms.
    assert urgent_exit == pytest.approx(1.5e-3, rel=1e-3)
    assert lax_exit == pytest.approx(2.0e-3, rel=1e-3)


def test_preempted_packet_resumes_with_remaining_time():
    net = _preemptive_net()
    lax = make_packet(slack=10e-3)
    u1 = make_packet(slack=0.0)
    u2 = make_packet(slack=0.0)
    net.inject_at(0.0, lax)
    net.inject_at(0.5e-3, u1)   # preempts with 0.5 ms of lax remaining
    net.inject_at(1.6e-3, u2)   # preempts the resumed lax again
    net.run()
    assert net.tracer.records[u1.pid].exit == pytest.approx(1.5e-3, rel=1e-3)
    assert net.tracer.records[u2.pid].exit == pytest.approx(2.6e-3, rel=1e-3)
    # lax transmitted 0.5ms + 0.1ms + 0.4ms in three fragments.
    assert net.tracer.records[lax.pid].exit == pytest.approx(3.0e-3, rel=1e-3)


def test_no_preemption_between_equal_slack_packets():
    net = _preemptive_net()
    first = make_packet(slack=5e-3)
    second = make_packet(slack=5e-3)
    net.inject_at(0.0, first)
    net.inject_at(0.2e-3, second)
    net.run()
    # second's key (slack + te) is larger; first must not be preempted.
    assert net.tracer.records[first.pid].exit == pytest.approx(1.0e-3, rel=1e-3)
    assert net.tracer.records[second.pid].exit == pytest.approx(2.0e-3, rel=1e-3)


def test_slack_header_charged_for_pause_time():
    net = _preemptive_net()
    lax = make_packet(slack=10e-3)
    urgent = make_packet(slack=0.0)
    net.inject_at(0.0, lax)
    net.inject_at(0.5e-3, urgent)
    net.run()
    # lax spent 2.0ms at the port, 1.0ms of it transmitting => 1.0ms waited.
    assert lax.slack == pytest.approx(10e-3 - 1.0e-3, rel=1e-3)


def test_preemptive_port_rejects_finite_buffers():
    net = Network()
    net.add_host("a")
    net.add_router("SW")
    net.add_link("a", "SW", 8 * MBPS, 0.0)
    node = net.nodes["a"]
    link = node.ports["SW"].link
    with pytest.raises(ConfigurationError):
        PreemptivePort(node, link, LstfScheduler(), buffer_bytes=1000)


def test_preemptive_port_requires_preemption_keys():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8000 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    net.use_preemptive_ports(FifoScheduler)  # FIFO: preemption_key is None
    net.inject_at(0.0, make_packet())
    with pytest.raises(ConfigurationError):
        net.run()


def test_work_conservation_under_preemption():
    """Total service time equals the sum of transmission times."""
    net = _preemptive_net()
    packets = [make_packet(slack=s * 1e-3) for s in (9, 1, 5, 0, 7)]
    for i, p in enumerate(packets):
        net.inject_at(i * 0.3e-3, p)
    net.run()
    last_exit = max(net.tracer.records[p.pid].exit for p in packets)
    # 5 packets x 1ms back to back from t~0 (host link is instant-ish).
    assert last_exit == pytest.approx(5e-3, rel=1e-2)
