"""Unit tests for the RED active queue manager."""

from __future__ import annotations

import random

import pytest

from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.sim.aqm import RedAqm
from repro.sim.network import Network
from repro.transport.tcp import install_tcp_flows
from repro.units import MBPS
from tests.conftest import make_packet


def _aqm(**kwargs):
    defaults = dict(min_threshold=5_000, max_threshold=15_000,
                    max_probability=0.1, weight=0.5, rng=random.Random(1))
    defaults.update(kwargs)
    return RedAqm(**defaults)


class TestRedDecision:
    def test_no_drops_below_min_threshold(self):
        aqm = _aqm()
        for _ in range(100):
            assert not aqm.should_drop(make_packet(), queue_bytes=1_000, now=0.0)

    def test_always_drops_above_max_threshold(self):
        aqm = _aqm(weight=1.0)  # average tracks instantaneous queue
        assert aqm.should_drop(make_packet(), queue_bytes=50_000, now=0.0)

    def test_probabilistic_between_thresholds(self):
        aqm = _aqm(weight=1.0, max_probability=0.5)
        decisions = [
            aqm.should_drop(make_packet(), queue_bytes=10_000, now=float(i))
            for i in range(300)
        ]
        drop_rate = sum(decisions) / len(decisions)
        assert 0.2 < drop_rate < 0.9  # some but not all

    def test_average_is_smoothed(self):
        aqm = _aqm(weight=0.1)
        aqm.should_drop(make_packet(), queue_bytes=10_000, now=0.0)
        assert aqm.average_queue == pytest.approx(1_000.0)

    def test_idle_aging_decays_average(self):
        aqm = _aqm(weight=1.0, idle_bandwidth=8e6)  # drains 1e6 B/s
        aqm.should_drop(make_packet(), queue_bytes=10_000, now=0.0)
        aqm.on_idle(0.0)
        aqm.should_drop(make_packet(), queue_bytes=0, now=0.005)  # 5 ms idle
        assert aqm.average_queue < 10_000

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RedAqm(min_threshold=0, max_threshold=10)
        with pytest.raises(ConfigurationError):
            RedAqm(min_threshold=10, max_threshold=5)
        with pytest.raises(ConfigurationError):
            RedAqm(min_threshold=1, max_threshold=2, max_probability=0.0)
        with pytest.raises(ConfigurationError):
            RedAqm(min_threshold=1, max_threshold=2, weight=2.0)


class TestSlackAwareRed:
    def test_victim_is_highest_slack_not_arrival(self):
        from repro.schedulers import LstfScheduler

        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0)
        net.add_link("SW", "b", 8 * MBPS, 0.0)
        port = net.nodes["SW"].ports["b"]
        port.set_scheduler(LstfScheduler())
        # weight=1, min<max tiny: every arrival beyond the first triggers
        # a drop decision once the queue exceeds min_threshold.
        port.set_aqm(RedAqm(min_threshold=500, max_threshold=501,
                            weight=1.0, rng=random.Random(1), slack_aware=True))
        urgent1 = make_packet(slack=0.0)
        lax = make_packet(slack=99.0)
        urgent2 = make_packet(slack=0.0)
        for p in (urgent1, lax, urgent2):
            net.inject_at(0.0, p)
        net.run()
        # The lax queued packet is sacrificed; both urgent packets survive.
        assert net.tracer.records[lax.pid].dropped_at == "SW"
        assert net.tracer.records[urgent1.pid].delivered
        assert net.tracer.records[urgent2.pid].delivered

    def test_arrival_dropped_when_it_is_the_laxest(self):
        from repro.schedulers import LstfScheduler

        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0)
        net.add_link("SW", "b", 8 * MBPS, 0.0)
        port = net.nodes["SW"].ports["b"]
        port.set_scheduler(LstfScheduler())
        port.set_aqm(RedAqm(min_threshold=500, max_threshold=501,
                            weight=1.0, rng=random.Random(1), slack_aware=True))
        urgent1 = make_packet(slack=0.0)
        urgent2 = make_packet(slack=0.0)
        lax = make_packet(slack=99.0)  # arrives last, laxest of all
        for p in (urgent1, urgent2, lax):
            net.inject_at(0.0, p)
        net.run()
        assert net.tracer.records[lax.pid].dropped_at == "SW"
        assert net.tracer.records[urgent2.pid].delivered


class TestRedOnPort:
    def test_red_drops_before_buffer_overflow(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0005)
        net.add_link("SW", "b", 8 * MBPS, 0.0005)
        port = net.nodes["SW"].ports["b"]
        port.set_buffer(60_000)
        port.set_aqm(RedAqm(min_threshold=6_000, max_threshold=20_000,
                            weight=0.2, rng=random.Random(2)))
        flow = Flow(1, "a", "b", 400_000, start=0.0)
        stats = install_tcp_flows(net, [flow], min_rto=0.05)
        net.run(until=20.0)
        assert stats.completed == 1       # TCP recovers from early drops
        assert net.tracer.drops > 0       # RED actually dropped
        # The queue never reached the hard buffer limit: every drop was RED's.
        assert port.buffered <= 60_000

    def test_red_keeps_average_queue_near_thresholds(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_router("SW")
        net.add_link("a", "SW", 800 * MBPS, 0.0005)
        net.add_link("SW", "b", 8 * MBPS, 0.0005)
        port = net.nodes["SW"].ports["b"]
        aqm = RedAqm(min_threshold=6_000, max_threshold=20_000,
                     weight=0.05, rng=random.Random(3))
        port.set_aqm(aqm)
        flows = [Flow(i, "a", "b", 200_000, start=0.0) for i in (1, 2)]
        install_tcp_flows(net, flows, min_rto=0.05)
        net.run(until=10.0)
        # RED's whole point: the *average* queue stabilises around the
        # control band rather than pinning at the tail-drop limit.
        assert aqm.average_queue < 40_000
