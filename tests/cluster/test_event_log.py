"""The queue's structured event log: every transition leaves a line."""

from __future__ import annotations

from repro.api import ExperimentSpec, spec_run_id
from repro.cluster import JobQueue
from repro.cluster.client import status
from repro.obs.events import events_path, read_events

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})
SWEEP = ExperimentSpec(
    "table1", duration=0.04, seeds=(1, 2), options={"rows": (0,)}
).sweep()


def _kinds(tmp_path):
    return [e["kind"] for e in read_events(tmp_path)]


def test_submit_logs_one_event_per_job(tmp_path):
    queue = JobQueue(tmp_path)
    ids = queue.submit(SWEEP)
    events = read_events(tmp_path, kinds=("submit",))
    assert [e["job"] for e in events] == ids
    assert [e["run_id"] for e in events] == [spec_run_id(s) for s in SWEEP]


def test_claim_ack_lifecycle_is_logged_in_order(tmp_path):
    queue = JobQueue(tmp_path)
    (job_id,) = queue.submit([TINY])
    job = queue.claim("w1")
    queue.ack(job.id, "w1")
    kinds = _kinds(tmp_path)
    assert kinds == ["submit", "claim", "ack"]
    claim = read_events(tmp_path, kinds=("claim",))[0]
    assert claim["job"] == job_id
    assert claim["worker"] == "w1"
    assert claim["attempts"] == 1


def test_failures_log_requeue_then_terminal_fail(tmp_path):
    queue = JobQueue(tmp_path, max_attempts=2)
    queue.submit([TINY])
    job = queue.claim("w1")
    queue.fail(job.id, "w1", "x" * 500)
    job = queue.claim("w1")
    queue.fail(job.id, "w1", "second strike")
    fails = read_events(tmp_path, kinds=("requeue", "fail"))
    assert [e["kind"] for e in fails] == ["requeue", "fail"]
    # Long error strings are truncated in the log, not stored verbatim.
    assert len(fails[0]["error"]) <= 200


def test_lease_expiry_and_reclaim_are_logged(tmp_path):
    queue = JobQueue(tmp_path, default_lease_s=0.01)
    queue.submit([TINY])
    queue.claim("w1")
    import time

    time.sleep(0.05)
    queue.reap()
    kinds = _kinds(tmp_path)
    assert "lease-expiry" in kinds
    assert "reclaim" in kinds
    assert "worker-expired" in kinds


def test_worker_registration_and_heartbeat_logged(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    queue.register_worker("w1")
    queue.claim_batch("w1", 1)
    queue.heartbeat_worker("w1")
    queue.unregister_worker("w1")
    kinds = _kinds(tmp_path)
    assert kinds.count("register") >= 1
    assert "heartbeat" in kinds
    assert "unregister" in kinds


def test_status_surfaces_the_event_tail(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit(SWEEP)
    snap = status(tmp_path, events=1)
    assert len(snap.events) == 1
    assert snap.events[0]["kind"] == "submit"
    assert "recent events:" in snap.render()
    assert "events" in snap.to_dict()
    # And stays out of the payload when not requested.
    bare = status(tmp_path)
    assert bare.events == []
    assert "events" not in bare.to_dict()


def test_event_log_failure_does_not_poison_the_transaction(tmp_path, monkeypatch):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("repro.cluster.queue.append_events", boom)
    job = queue.claim("w1")  # must not raise
    assert job is not None
    queue.ack(job.id, "w1")
    assert queue.counts()["done"] == 1


def test_fresh_queue_has_no_event_log_until_something_happens(tmp_path):
    JobQueue(tmp_path)
    assert not events_path(tmp_path).exists()
