"""The queue execution mode end to end: determinism, crashes, the CLI.

These are the acceptance tests of the distributed subsystem:

* ``run_many(executor="queue")`` with concurrent worker processes is
  byte-identical to the serial path (the determinism suite, extended);
* a worker SIGKILLed mid-job loses its lease and a surviving worker
  completes the job;
* a daemon worker drains gracefully on SIGTERM;
* the ``repro submit`` / ``repro worker`` / ``repro status`` trio works
  from the shell.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, run_many, spec_run_id
from repro.cli import main
from repro.cluster import DONE, RUNNING, JobQueue, Worker, gather, status, submit
from repro.errors import ClusterError, ConfigurationError

SWEEP = ExperimentSpec(
    "table1", duration=0.04, seeds=(1, 2, 3, 4), options={"rows": (0,)}
).sweep()


def _worker_process(queue_dir: Path, *extra: str) -> subprocess.Popen:
    """A real `repro worker` OS process against ``queue_dir``."""
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--queue", str(queue_dir),
         *extra],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out after {timeout}s waiting for {what}")


class TestDeterminism:
    def test_queue_executor_matches_serial_byte_for_byte(self, tmp_path):
        """The headline guarantee: distribution changes nothing."""
        serial = run_many(SWEEP)
        queued = run_many(
            SWEEP, workers=2, executor="queue", queue_dir=tmp_path / "q"
        )
        assert [a.canonical_json() for a in queued] == [
            a.canonical_json() for a in serial
        ]
        # and the sweep really sharded: >= 2 distinct worker identities
        # or at minimum every job terminal and done
        jobs = JobQueue(tmp_path / "q").jobs()
        assert [j.state for j in jobs] == [DONE] * len(SWEEP)

    def test_queue_dir_doubles_as_warm_cache_across_sweeps(self, tmp_path):
        queue_dir = tmp_path / "q"
        first = run_many(SWEEP, executor="queue", queue_dir=queue_dir)
        again = run_many(SWEEP, executor="queue", queue_dir=queue_dir)
        assert [a.canonical_json() for a in again] == [
            a.canonical_json() for a in first
        ]
        # 8 jobs total, but only 4 artifacts: the rerun hit the cache
        files = list((queue_dir / "artifacts").glob("*.json"))
        assert len(files) == len(SWEEP)

    def test_out_dir_receives_copies_of_gathered_artifacts(self, tmp_path):
        out = tmp_path / "out"
        run_many(SWEEP[:2], executor="queue", queue_dir=tmp_path / "q",
                 out_dir=out)
        assert sorted(p.name for p in out.glob("*.json")) == sorted(
            f"{spec_run_id(s)}.json" for s in SWEEP[:2]
        )

    def test_warm_out_dir_cache_short_circuits_the_queue(self, tmp_path):
        """out_dir keeps its cache contract under the queue executor: a
        fully warm cache means nothing is ever enqueued or simulated."""
        out = tmp_path / "out"
        warm = run_many(SWEEP, out_dir=out)  # serial warm-up
        queue_dir = tmp_path / "q"
        answered = run_many(SWEEP, workers=2, executor="queue",
                            queue_dir=queue_dir, out_dir=out)
        assert all(a.from_cache for a in answered)
        assert [a.canonical_json() for a in answered] == [
            a.canonical_json() for a in warm
        ]
        assert JobQueue(queue_dir).jobs() == []  # no jobs were submitted

    def test_gather_on_a_nonexistent_queue_raises(self, tmp_path):
        with pytest.raises(ClusterError, match="not a job queue"):
            gather(tmp_path / "typo", [1], timeout=1)

    def test_per_job_protocol_matches_batched_byte_for_byte(self, tmp_path):
        """--batch-size is an overhead knob, never a results knob."""
        batched = run_many(SWEEP, workers=2, executor="queue",
                           queue_dir=tmp_path / "qb")  # default batch
        per_job = run_many(SWEEP, workers=2, executor="queue",
                           queue_dir=tmp_path / "q1", batch_size=1)
        assert [a.canonical_json() for a in per_job] == [
            a.canonical_json() for a in batched
        ]

    def test_executor_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            run_many(SWEEP, executor="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="needs queue_dir"):
            run_many(SWEEP, executor="queue")
        with pytest.raises(ConfigurationError, match="only applies"):
            run_many(SWEEP, executor="serial", queue_dir=tmp_path)
        with pytest.raises(ConfigurationError, match="workers must be"):
            run_many(SWEEP, workers=0)
        with pytest.raises(ConfigurationError, match="workers must be"):
            run_many(SWEEP, workers=2.5)
        with pytest.raises(ConfigurationError, match="batch_size must be"):
            run_many(SWEEP, executor="queue", queue_dir=tmp_path / "q",
                     batch_size=0)
        with pytest.raises(ConfigurationError, match="batch_size= only applies"):
            run_many(SWEEP, executor="serial", batch_size=4)
        assert run_many([], executor="queue", queue_dir=tmp_path / "q") == []


class TestCrashSafety:
    def test_sigkilled_worker_loses_lease_and_survivor_finishes(self, tmp_path):
        """The acceptance criterion: kill -9 mid-job, the job still lands."""
        queue = JobQueue(tmp_path, default_lease_s=0.8)
        # long enough (~0.3s simulated wall) to reliably kill mid-run
        (job_id,) = queue.submit(
            [ExperimentSpec("table1", duration=0.3, options={"rows": (0,)})]
        )
        victim = _worker_process(tmp_path, "--lease", "0.8")
        try:
            _wait_for(
                lambda: queue.job(job_id).state == RUNNING,
                timeout=30.0,
                what="the victim worker to claim the job",
            )
            victim.kill()  # SIGKILL: no drain, no ack, no heartbeat
            victim.wait(timeout=10.0)
            killed_by = queue.job(job_id).worker
            survivor = Worker(queue, worker_id="survivor", lease_s=0.8,
                              poll_s=0.05)
            assert survivor.drain() == 1
        finally:
            if victim.poll() is None:
                victim.kill()
        job = queue.job(job_id)
        assert job.state == DONE
        assert job.worker == "survivor"
        assert job.worker != killed_by
        assert job.attempts == 2  # the victim's claim burned attempt one
        (artifact,) = gather(tmp_path, [job_id], timeout=5)
        assert artifact.spec.duration == 0.3

    def test_sigkilled_mid_batch_reclaims_the_whole_batch(self, tmp_path):
        """Batch crash semantics: kill -9 a worker holding a 4-job batch
        and the *entire* batch is reclaimed after lease expiry, each job
        charged exactly the one attempt its claim burned — and the
        gathered artifacts stay byte-identical to serial ``run_many``."""
        sweep = ExperimentSpec(
            "table1", duration=0.25, seeds=(1, 2, 3, 4), options={"rows": (0,)}
        ).sweep()
        queue = JobQueue(tmp_path, default_lease_s=0.8)
        job_ids = queue.submit(sweep)
        victim = _worker_process(tmp_path, "--lease", "0.8",
                                 "--batch-size", "4")
        try:
            _wait_for(
                lambda: all(
                    state == RUNNING
                    for state in queue.states(ids=job_ids).values()
                ),
                timeout=30.0,
                what="the victim to claim the whole batch",
            )
            held_by = {job.worker for job in queue.jobs(ids=job_ids)}
            assert len(held_by) == 1  # one claim_batch took all four
            victim.kill()  # SIGKILL mid-batch: no report, no heartbeat
            victim.wait(timeout=10.0)
            _wait_for(
                lambda: queue.reap() or all(
                    state == "pending"
                    for state in queue.states(ids=job_ids).values()
                ),
                timeout=10.0,
                what="lease expiry to reclaim the whole batch",
            )
            # the one claim charged one attempt per job, nothing more
            assert [job.attempts for job in queue.jobs(ids=job_ids)] == [1] * 4
            survivor = Worker(queue, worker_id="survivor", lease_s=0.8,
                              poll_s=0.05, batch_size=4)
            assert survivor.drain() == 4
        finally:
            if victim.poll() is None:
                victim.kill()
        jobs = queue.jobs(ids=job_ids)
        assert [job.state for job in jobs] == [DONE] * 4
        assert {job.worker for job in jobs} == {"survivor"}
        assert [job.attempts for job in jobs] == [2] * 4  # retry advanced once
        gathered = gather(tmp_path, job_ids, timeout=5)
        assert [a.canonical_json() for a in gathered] == [
            a.canonical_json() for a in run_many(sweep)
        ]

    def test_sigterm_drains_a_daemon_worker_gracefully(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP[:2])
        daemon = _worker_process(tmp_path)
        try:
            gather(tmp_path, ids, timeout=60)  # daemon executed the sweep
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=30) == 0  # clean exit, not a traceback
        finally:
            if daemon.poll() is None:
                daemon.kill()

    def test_gather_times_out_with_a_pointed_error(self, tmp_path):
        ids = submit(SWEEP[:1], tmp_path)  # no workers anywhere
        with pytest.raises(ClusterError, match="are any workers running"):
            gather(tmp_path, ids, timeout=0.2, poll_s=0.05)


class TestCli:
    def test_submit_worker_status_round_trip(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        assert main(["submit", "table1", "--rows", "0", "--duration", "0.04",
                     "--seeds", "1", "2", "--queue", queue_dir]) == 0
        captured = capsys.readouterr()
        assert "submitted 2 job(s)" in captured.err
        handle = json.loads(captured.out)
        assert handle["jobs"] == [1, 2]

        assert main(["status", "--queue", queue_dir]) == 0
        assert "2 pending" in capsys.readouterr().out

        assert main(["worker", "--queue", queue_dir, "--drain"]) == 0
        assert "exiting after 2 job(s)" in capsys.readouterr().err

        assert main(["status", "--queue", queue_dir, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counts"]["done"] == 2
        assert [job["state"] for job in snapshot["jobs"]] == ["done", "done"]

        # gathered artifacts == a serial run_many of the same sweep
        sweep = ExperimentSpec(
            "table1", duration=0.04, seeds=(1, 2), options={"rows": (0,)}
        ).sweep()
        gathered = gather(queue_dir, handle["jobs"], timeout=5)
        assert [a.canonical_json() for a in gathered] == [
            a.canonical_json() for a in run_many(sweep)
        ]

    def test_submit_wait_prints_artifacts_when_a_worker_runs(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        daemon = _worker_process(Path(queue_dir))
        try:
            assert main(["submit", "table1", "--rows", "0", "--duration",
                         "0.04", "--queue", queue_dir, "--wait",
                         "--timeout", "60", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["spec"]["experiment"] == "table1"
        finally:
            daemon.terminate()
            daemon.wait(timeout=30)

    def test_run_executor_queue_flag(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        assert main(["run", "table1", "--rows", "0", "--duration", "0.04",
                     "--seeds", "1", "2", "--workers", "2",
                     "--executor", "queue", "--queue", queue_dir,
                     "--json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert len(payloads) == 2
        counts = status(queue_dir).counts
        assert counts["done"] == 2

    def test_run_rejects_queue_executor_without_queue(self, capsys):
        assert main(["run", "gadgets", "--executor", "queue"]) == 2
        assert "needs --queue" in capsys.readouterr().err

    def test_run_rejects_nonpositive_workers_cleanly(self, capsys):
        """A clear ConfigurationError, not a multiprocessing traceback."""
        assert main(["run", "gadgets", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "error: --workers must be >= 1" in err
        assert "Traceback" not in err

    def test_status_on_a_nonexistent_queue_is_an_error_not_empty(
        self, tmp_path, capsys
    ):
        """A typo'd --queue must not masquerade as a healthy empty queue."""
        assert main(["status", "--queue", str(tmp_path / "typo")]) == 2
        err = capsys.readouterr().err
        assert "not a job queue" in err
        assert not (tmp_path / "typo").exists()  # and nothing was created
