"""JobQueue unit tests: claiming, leases, retries, durability."""

from __future__ import annotations

import time

import pytest

from repro.api import ExperimentSpec, spec_run_id
from repro.cluster import DONE, FAILED, PENDING, RUNNING, JobQueue
from repro.errors import ClusterError, ConfigurationError

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})
SWEEP = ExperimentSpec(
    "table1", duration=0.04, seeds=(1, 2, 3), options={"rows": (0,)}
).sweep()


class TestSubmit:
    def test_ids_come_back_in_spec_order(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        assert ids == sorted(ids)
        jobs = queue.jobs(ids=ids)
        assert [job.spec for job in jobs] == SWEEP
        assert all(job.state == PENDING for job in jobs)
        assert [job.run_id for job in jobs] == [spec_run_id(s) for s in SWEEP]

    def test_empty_submit_is_a_no_op(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.submit([]) == []
        assert queue.counts() == {s: 0 for s in (PENDING, RUNNING, DONE, FAILED)}

    def test_non_spec_items_are_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="ExperimentSpec"):
            JobQueue(tmp_path).submit([{"experiment": "table1"}])

    def test_duplicate_specs_make_distinct_jobs_same_run_id(self, tmp_path):
        queue = JobQueue(tmp_path)
        a, b = queue.submit([TINY, TINY])
        assert a != b
        jobs = queue.jobs()
        assert jobs[0].run_id == jobs[1].run_id

    def test_bad_knobs_fail_fast(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path, default_lease_s=0)
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path, max_attempts=0)
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path).submit([TINY], max_attempts=0)


class TestClaim:
    def test_fifo_order_and_exclusivity(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        first = queue.claim("w1")
        second = queue.claim("w2")
        third = queue.claim("w1")
        assert [first.id, second.id, third.id] == ids
        assert queue.claim("w3") is None  # nothing pending remains
        assert first.state == RUNNING
        assert first.worker == "w1"
        assert first.attempts == 1
        assert first.lease_expires_at > time.time()

    def test_claim_on_empty_queue(self, tmp_path):
        assert JobQueue(tmp_path).claim("w") is None

    def test_ack_requires_ownership(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([TINY])
        job = queue.claim("w1")
        assert not queue.ack(job.id, "w2")  # not the lease holder
        assert queue.job(job_id).state == RUNNING
        assert queue.ack(job.id, "w1")
        assert queue.job(job_id).state == DONE
        assert not queue.ack(job.id, "w1")  # already terminal

    def test_unknown_job_lookup_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ClusterError, match="no job"):
            queue.job(99)
        queue.submit([TINY])
        with pytest.raises(ClusterError, match="no such job"):
            queue.jobs(ids=[1, 99])


class TestClaimBatch:
    def test_one_transaction_leases_up_to_n_jobs_in_order(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        jobs = queue.claim_batch("w1", 2)
        assert [job.id for job in jobs] == ids[:2]
        assert all(job.state == RUNNING for job in jobs)
        assert all(job.worker == "w1" for job in jobs)
        assert all(job.attempts == 1 for job in jobs)
        # the batch shares one deadline: expiry reclaims it as a unit
        assert len({job.lease_expires_at for job in jobs}) == 1
        rest = queue.claim_batch("w2", 5)
        assert [job.id for job in rest] == ids[2:]  # partial batch is fine
        assert queue.claim_batch("w3", 5) == []

    def test_claim_batch_registers_a_worker_lease_row(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(SWEEP)
        jobs = queue.claim_batch("w1", 3)
        (lease,) = queue.workers()
        assert lease["worker"] == "w1"
        assert lease["running"] == 3
        assert lease["lease_expires_at"] == jobs[0].lease_expires_at

    def test_claim_batch_rejects_bad_n(self, tmp_path):
        queue = JobQueue(tmp_path)
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ConfigurationError, match="claim_batch n"):
                queue.claim_batch("w", bad)

    def test_whole_batch_expires_and_is_reclaimed_together(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        queue.claim_batch("w1", 3, lease_s=0.05)
        time.sleep(0.08)  # w1 "crashed": no heartbeat, no report
        reclaimed = queue.claim_batch("w2", 5)
        assert [job.id for job in reclaimed] == ids
        assert all(job.attempts == 2 for job in reclaimed)
        assert {w["worker"] for w in queue.workers()} == {"w2"}  # w1 reaped

    def test_report_batch_commits_mixed_outcomes_at_once(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        ids = queue.submit(SWEEP)
        queue.claim_batch("w1", 3)
        out = queue.report_batch("w1", [
            (ids[0], None, True),            # ack
            (ids[1], "transient boom", True),  # requeue (budget remains)
            (ids[2], "bad spec", False),       # terminal, no retry
        ])
        assert out == {ids[0]: True, ids[1]: True, ids[2]: True}
        states = queue.states(ids=ids)
        assert states == {ids[0]: DONE, ids[1]: PENDING, ids[2]: FAILED}
        assert queue.job(ids[1]).error == "transient boom"

    def test_report_batch_rejects_jobs_that_are_no_longer_ours(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([TINY])
        queue.claim_batch("w1", 1, lease_s=0.05)
        time.sleep(0.08)
        queue.claim_batch("w2", 1)  # reclaims from the presumed-dead w1
        out = queue.report_batch("w1", [(job_id, None, True)])
        assert out == {job_id: False}
        assert queue.job(job_id).state == RUNNING  # still w2's
        assert queue.report_batch("w1", []) == {}


class TestWorkerLeases:
    def test_heartbeat_worker_renews_every_held_job_in_one_call(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        queue.claim_batch("w1", 3, lease_s=0.15)
        for _ in range(4):
            time.sleep(0.05)
            assert queue.heartbeat_worker("w1", lease_s=0.15)
        # 0.2s elapsed > the original lease, yet nothing was reclaimed
        assert queue.claim_batch("w2", 5) == []
        out = queue.report_batch("w1", [(i, None, True) for i in ids])
        assert all(out.values())

    def test_heartbeat_worker_reports_a_reaped_registration(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([TINY])
        queue.claim_batch("w1", 1, lease_s=0.05)
        time.sleep(0.08)
        queue.reap()  # w1 presumed dead: job requeued, lease row dropped
        assert not queue.heartbeat_worker("w1")

    def test_register_and_unregister_roundtrip(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.register_worker("idle-daemon", lease_s=60.0)
        (lease,) = queue.workers()
        assert lease["worker"] == "idle-daemon"
        assert lease["running"] == 0
        queue.unregister_worker("idle-daemon")
        assert queue.workers() == []

    def test_expired_registrations_are_not_reported(self, tmp_path):
        """A dead idle daemon must not haunt `repro status` forever: on a
        quiescent queue nothing triggers a reclaim, so workers() itself
        filters rows whose lease already lapsed."""
        queue = JobQueue(tmp_path)
        queue.register_worker("dead-daemon", lease_s=0.05)
        assert [w["worker"] for w in queue.workers()] == ["dead-daemon"]
        time.sleep(0.08)
        assert queue.workers() == []  # presumed dead, not shown


class TestRetries:
    def test_fail_requeues_until_budget_runs_out(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        (job_id,) = queue.submit([TINY])
        job = queue.claim("w1")
        assert queue.fail(job.id, "w1", "boom 1")
        state = queue.job(job_id)
        assert state.state == PENDING
        assert state.error == "boom 1"
        job = queue.claim("w1")
        assert job.attempts == 2
        assert queue.fail(job.id, "w1", "boom 2")
        state = queue.job(job_id)
        assert state.state == FAILED  # budget exhausted -> terminal record
        assert state.error == "boom 2"
        assert queue.claim("w1") is None
        assert not queue.active()

    def test_fatal_failure_skips_the_retry_budget(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=3)
        (job_id,) = queue.submit([TINY])
        job = queue.claim("w1")
        assert queue.fail(job.id, "w1", "bad spec", retry=False)
        assert queue.job(job_id).state == FAILED

    def test_fail_requires_ownership(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([TINY])
        job = queue.claim("w1")
        assert not queue.fail(job.id, "w2", "not mine")
        assert queue.job(job.id).state == RUNNING


class TestLeases:
    def test_expired_lease_is_reclaimed_by_the_next_claim(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([TINY])
        queue.claim("w1", lease_s=0.05)
        assert queue.claim("w2") is None  # still leased
        time.sleep(0.08)
        job = queue.claim("w2")
        assert job is not None and job.id == job_id
        assert job.worker == "w2"
        assert job.attempts == 2  # the lost lease burned an attempt

    def test_expiry_with_no_budget_left_is_terminal(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        (job_id,) = queue.submit([TINY])
        queue.claim("w1", lease_s=0.05)
        time.sleep(0.08)
        assert queue.claim("w2") is None
        state = queue.job(job_id)
        assert state.state == FAILED
        assert "lease expired" in state.error
        assert "w1" in state.error

    def test_heartbeat_extends_the_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([TINY])
        job = queue.claim("w1", lease_s=0.15)
        for _ in range(4):
            time.sleep(0.05)
            assert queue.heartbeat(job.id, "w1", lease_s=0.15)
        # 0.2s elapsed > the original lease, but the beats kept it alive
        assert queue.claim("w2") is None
        assert queue.ack(job.id, "w1")

    def test_heartbeat_reports_a_lost_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([TINY])
        job = queue.claim("w1", lease_s=0.05)
        time.sleep(0.08)
        reclaimed = queue.claim("w2")
        assert reclaimed.id == job.id
        assert not queue.heartbeat(job.id, "w1")


class TestObservation:
    def test_states_is_a_cheap_id_to_state_map(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit(SWEEP)
        job = queue.claim("w")
        queue.ack(job.id, "w")
        states = queue.states(ids=ids)
        assert states[ids[0]] == DONE
        assert all(states[i] == PENDING for i in ids[1:])
        assert queue.states(ids=[]) == {}
        with pytest.raises(ClusterError, match="no such job"):
            queue.states(ids=[999])

    def test_reap_lets_an_observer_drive_expired_leases(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        (job_id,) = queue.submit([TINY])
        queue.claim("w1", lease_s=0.05)
        time.sleep(0.08)
        queue.reap()  # no claim involved: a pure observer reaps
        assert queue.job(job_id).state == FAILED

    def test_create_false_requires_an_existing_queue(self, tmp_path):
        with pytest.raises(ClusterError, match="not a job queue"):
            JobQueue(tmp_path / "nope", create=False)
        JobQueue(tmp_path / "real").submit([TINY])
        reopened = JobQueue(tmp_path / "real", create=False)
        assert reopened.counts()[PENDING] == 1


class TestDurability:
    def test_a_new_handle_sees_the_same_queue(self, tmp_path):
        ids = JobQueue(tmp_path).submit(SWEEP)
        reopened = JobQueue(tmp_path)  # a different process, in spirit
        assert [job.id for job in reopened.jobs()] == ids
        assert reopened.counts()[PENDING] == len(ids)
        assert reopened.active()

    def test_counts_track_the_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([TINY, TINY.with_(seeds=(2,))])
        job = queue.claim("w")
        counts = queue.counts()
        assert counts[PENDING] == 1 and counts[RUNNING] == 1
        queue.ack(job.id, "w")
        job = queue.claim("w")
        queue.fail(job.id, "w", "x", retry=False)
        counts = queue.counts()
        assert counts[DONE] == 1 and counts[FAILED] == 1
        assert not queue.active()
