"""Concurrency stress tests for the batch-claim job queue.

The queue's whole correctness argument rests on three invariants that
must hold under arbitrary interleavings of ``claim_batch`` /
``heartbeat_worker`` / ``report_batch`` across workers:

* **no double execution** — a job is never held (and run) by two live
  workers at once; with no lease expiry in play, every job is claimed
  exactly once overall;
* **no lost jobs** — every submitted job reaches a terminal state, even
  when workers abandon whole claimed batches (the SIGKILL model: no
  report, no heartbeat, lease expiry reclaims the batch);
* **exactly-once terminal transition** — across all racing workers, each
  job's successful ``done`` report is accepted exactly once
  (``report_batch`` returns ``True`` once per job, ever).

These are seed-matrix-driven torture loops, not unit tests: N threads
(and one multi-process variant) race randomized batch sizes over one
shared queue directory.  Jobs are *not* simulated here — reports are
synthesized — so the loops exercise pure broker protocol at full speed.
Marked ``slow``: CI runs them in the scheduled/label-triggered stress
job; locally ``pytest -m slow tests/cluster`` selects them.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time

import pytest

from repro.api import ExperimentSpec
from repro.cluster import DONE, FAILED, PENDING, JobQueue

pytestmark = pytest.mark.slow

#: Scale knob for the scheduled CI job: multiplies the job counts below
#: (e.g. ``REPRO_STRESS_SCALE=5`` for a nightly soak).
SCALE = max(1, int(os.environ.get("REPRO_STRESS_SCALE", "1")))


def _sweep(n: int) -> list[ExperimentSpec]:
    return ExperimentSpec(
        "table1", duration=0.04, seeds=tuple(range(1, n + 1)),
        options={"rows": (0,)},
    ).sweep()


class _Ledger:
    """Thread-shared record of who claimed and who successfully reported."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.claims: list[int] = []        # every job id ever claimed
        self.acked: list[int] = []         # job ids whose report was accepted
        self.held: set[int] = set()        # ids currently held by live workers

    def claim(self, ids: list[int], exclusive: bool) -> None:
        with self.lock:
            if exclusive:
                overlap = self.held & set(ids)
                assert not overlap, f"jobs {overlap} double-claimed while held"
            self.held.update(ids)
            self.claims.extend(ids)

    def release(self, results: dict[int, bool]) -> None:
        with self.lock:
            self.held.difference_update(results)
            self.acked.extend(i for i, accepted in results.items() if accepted)


def _worker_loop(
    queue: JobQueue,
    worker_id: str,
    ledger: _Ledger,
    seed: int,
    max_batch: int,
    abandon_first: bool,
    exclusive: bool,
    deadline: float,
) -> None:
    rng = random.Random(seed)
    abandoned = not abandon_first
    while time.monotonic() < deadline:
        jobs = queue.claim_batch(worker_id, rng.randint(1, max_batch))
        if not jobs:
            if not queue.active():
                return
            time.sleep(0.001)
            continue
        ids = [job.id for job in jobs]
        if not abandoned:
            # the SIGKILL model: hold the whole batch, never report,
            # never heartbeat — lease expiry must reclaim all of it.
            abandoned = True
            with ledger.lock:
                ledger.held.difference_update(ids)
            continue
        ledger.claim(ids, exclusive=exclusive)
        results = queue.report_batch(
            worker_id, [(job_id, None, True) for job_id in ids]
        )
        ledger.release(results)
    pytest.fail(f"stress worker {worker_id} hit the deadline — queue wedged?")


def _run_threads(queue, ledger, workers, max_batch, seed, abandon, exclusive):
    deadline = time.monotonic() + 60.0
    failures: list[BaseException] = []

    def guarded(*args):
        # invariant violations fire inside worker threads; without this
        # they would die silently and only show up as downstream state
        # mismatches with the precise diagnostic lost
        try:
            _worker_loop(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised in main
            failures.append(exc)

    threads = [
        threading.Thread(
            target=guarded,
            args=(queue, f"w{i}", ledger, seed * 1000 + i, max_batch,
                  abandon and i % 2 == 0, exclusive, deadline),
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
        assert not thread.is_alive(), "stress worker never finished"
    if failures:
        raise failures[0]


class TestRacingClaims:
    """No crashes: claims partition the queue exactly."""

    @pytest.mark.parametrize("workers,max_batch,seed", [
        (4, 3, 1),
        (8, 2, 2),
        (3, 7, 3),
        (6, 4, 4),
    ])
    def test_no_job_is_double_claimed_lost_or_double_done(
        self, tmp_path, workers, max_batch, seed
    ):
        jobs = 40 * SCALE
        queue = JobQueue(tmp_path, default_lease_s=60.0)
        ids = queue.submit(_sweep(jobs))
        ledger = _Ledger()
        _run_threads(queue, ledger, workers, max_batch, seed,
                     abandon=False, exclusive=True)
        # no double execution: with no expiry possible (60s lease),
        # every job was claimed exactly once across all workers
        assert sorted(ledger.claims) == ids
        # exactly-once terminal transition: one accepted done per job
        assert sorted(ledger.acked) == ids
        # no lost jobs: every row is terminal-done
        states = queue.states(ids=ids)
        assert all(state == DONE for state in states.values())
        assert queue.counts()[DONE] == jobs

    def test_batches_never_overlap_across_workers(self, tmp_path):
        """Each claim_batch's ids are disjoint from every other live batch."""
        queue = JobQueue(tmp_path, default_lease_s=60.0)
        queue.submit(_sweep(30 * SCALE))
        ledger = _Ledger()
        _run_threads(queue, ledger, workers=6, max_batch=5, seed=99,
                     abandon=False, exclusive=True)
        assert len(ledger.claims) == len(set(ledger.claims))


class TestCrashingWorkers:
    """Abandoned batches (the SIGKILL model) are reclaimed, never lost."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_abandoned_batches_converge_to_done_exactly_once(
        self, tmp_path, seed
    ):
        jobs = 24 * SCALE
        # short lease so reclaim happens on the test's timescale; a
        # budget big enough that abandonment can never exhaust it
        # (each of the 6 workers abandons at most one batch)
        queue = JobQueue(tmp_path, default_lease_s=0.05, max_attempts=50)
        ids = queue.submit(_sweep(jobs))
        ledger = _Ledger()
        _run_threads(queue, ledger, workers=6, max_batch=4, seed=seed,
                     abandon=True, exclusive=False)
        # no lost jobs, and the terminal state is done for every one
        states = queue.states(ids=ids)
        assert all(state == DONE for state in states.values())
        # exactly-once: re-claims after expiry may re-run a job, but
        # only one worker's done report is ever accepted per job
        assert sorted(ledger.acked) == ids
        # bounded retries: nothing burned more than workers+1 attempts
        assert all(job.attempts <= 7 for job in queue.jobs(ids=ids))


def _process_worker(queue_dir: str, worker_id: str, out):
    """Claim/report loop for the multi-process variant (module level:
    picklable for ``multiprocessing``)."""
    queue = JobQueue(queue_dir)
    rng = random.Random(worker_id)
    accepted: list[int] = []
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        jobs = queue.claim_batch(worker_id, rng.randint(1, 4))
        if not jobs:
            if not queue.active():
                break
            time.sleep(0.001)
            continue
        results = queue.report_batch(
            worker_id, [(job.id, None, True) for job in jobs]
        )
        accepted.extend(i for i, ok in results.items() if ok)
    out.put((worker_id, accepted))


class TestAcrossProcesses:
    def test_processes_racing_claim_batch_partition_the_queue(self, tmp_path):
        """The same partition invariant with real OS processes (separate
        SQLite connections, real file locking, no GIL serialisation)."""
        jobs = 30 * SCALE
        queue = JobQueue(tmp_path, default_lease_s=60.0)
        ids = queue.submit(_sweep(jobs))
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(target=_process_worker,
                        args=(str(tmp_path), f"p{i}", out))
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        accepted: list[int] = []
        for _ in procs:
            _, ids_done = out.get(timeout=90.0)
            accepted.extend(ids_done)
        for proc in procs:
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
        assert sorted(accepted) == ids
        states = queue.states(ids=ids)
        assert all(state == DONE for state in states.values())
        assert queue.counts() == {
            PENDING: 0, "running": 0, DONE: jobs, FAILED: 0,
        }
