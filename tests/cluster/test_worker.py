"""Worker loop tests: run/ack, failure policy, caching, graceful stop."""

from __future__ import annotations

import time

import pytest

import repro.cluster.worker as worker_mod
from repro.api import ExperimentSpec, load_artifact
from repro.cluster import DONE, FAILED, JobQueue, Worker, gather
from repro.errors import JobFailedError

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})


def test_run_one_executes_and_acks(tmp_path):
    queue = JobQueue(tmp_path)
    (job_id,) = queue.submit([TINY])
    worker = Worker(queue, worker_id="w1")
    assert worker.run_one()
    assert not worker.run_one()  # queue is empty now
    assert worker.jobs_run == 1
    job = queue.job(job_id)
    assert job.state == DONE
    assert job.worker == "w1"
    artifact = load_artifact(queue.artifact_dir / f"{job.run_id}.json")
    assert artifact.spec == TINY


def test_drain_finishes_a_sweep_and_gather_returns_it_in_order(tmp_path):
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(3, 1, 2), options={"rows": (0,)}
    ).sweep()
    queue = JobQueue(tmp_path)
    ids = queue.submit(sweep)
    assert Worker(queue).drain() == 3
    artifacts = gather(tmp_path, ids, timeout=5)
    assert [a.spec for a in artifacts] == sweep  # submission order, not seed order


def test_duplicate_specs_across_sweeps_simulate_exactly_once(tmp_path, monkeypatch):
    """The shared artifact cache: the second identical job is a cache hit."""
    freshness = []
    real_run = worker_mod.run

    def spying_run(*args, **kwargs):
        artifact = real_run(*args, **kwargs)
        freshness.append(artifact.from_cache)
        return artifact

    monkeypatch.setattr(worker_mod, "run", spying_run)
    queue = JobQueue(tmp_path)
    queue.submit([TINY])  # sweep 1
    queue.submit([TINY])  # a concurrent sweep resubmits the same spec
    Worker(queue).drain()
    assert freshness == [False, True]


def test_transient_failures_retry_until_the_budget_runs_out(tmp_path, monkeypatch):
    def exploding_run(*args, **kwargs):
        raise RuntimeError("simulated worker crash")

    monkeypatch.setattr(worker_mod, "run", exploding_run)
    queue = JobQueue(tmp_path, max_attempts=3)
    (job_id,) = queue.submit([TINY])
    worker = Worker(queue, worker_id="w1")
    assert worker.drain() == 3  # one execution per attempt, then terminal
    job = queue.job(job_id)
    assert job.state == FAILED
    assert job.attempts == 3
    assert "RuntimeError: simulated worker crash" in job.error
    with pytest.raises(JobFailedError, match="simulated worker crash"):
        gather(tmp_path, [job_id], timeout=5)


def test_config_errors_fail_terminally_without_retries(tmp_path):
    """A deterministic bad spec burns one attempt, not the whole budget."""
    bad = ExperimentSpec("table1", duration=0.04, options={"rows": (99,)})
    queue = JobQueue(tmp_path, max_attempts=3)
    (job_id,) = queue.submit([bad])
    Worker(queue).drain()
    job = queue.job(job_id)
    assert job.state == FAILED
    assert job.attempts == 1
    assert "ConfigurationError" in job.error


def test_run_batch_claims_up_to_batch_size_and_reports_once(tmp_path, monkeypatch):
    """One claim transaction and one report transaction cover the batch."""
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(1, 2, 3, 4, 5), options={"rows": (0,)}
    ).sweep()
    queue = JobQueue(tmp_path)
    ids = queue.submit(sweep)
    worker = Worker(queue, worker_id="w1", batch_size=3)
    reports = []
    real_report = queue.report_batch

    def spying_report(worker_id, results):
        reports.append([job_id for job_id, _, _ in results])
        return real_report(worker_id, results)

    monkeypatch.setattr(queue, "report_batch", spying_report)
    assert worker.run_batch() == 3
    assert worker.run_batch() == 2  # the partial tail batch
    assert worker.run_batch() == 0
    assert reports == [ids[:3], ids[3:]]
    assert all(s == DONE for s in queue.states(ids=ids).values())


def test_run_batch_mixed_failures_report_with_the_batch(tmp_path, monkeypatch):
    """A failing job inside a batch is requeued; its batch-mates still ack."""
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(1, 2, 3), options={"rows": (0,)}
    ).sweep()
    real_run = worker_mod.run

    def selective_run(spec, **kwargs):
        if spec.seed == 2:
            raise RuntimeError("seed 2 explodes")
        return real_run(spec, **kwargs)

    monkeypatch.setattr(worker_mod, "run", selective_run)
    queue = JobQueue(tmp_path, max_attempts=1)
    ids = queue.submit(sweep)
    worker = Worker(queue, batch_size=3)
    assert worker.run_batch() == 3
    states = queue.states(ids=ids)
    assert states == {ids[0]: DONE, ids[1]: FAILED, ids[2]: DONE}
    assert "seed 2 explodes" in queue.job(ids[1]).error


def test_drain_respects_max_jobs_with_batching(tmp_path):
    """The batch claim is clamped so max_jobs is never overshot."""
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(1, 2, 3), options={"rows": (0,)}
    ).sweep()
    queue = JobQueue(tmp_path)
    queue.submit(sweep)
    worker = Worker(queue, batch_size=8)
    assert worker.drain(max_jobs=2) == 2
    assert queue.counts()[DONE] == 2


def test_loops_unregister_the_worker_lease_on_exit(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    worker = Worker(queue, worker_id="w1")
    assert worker.drain() == 1
    assert queue.workers() == []  # the lease record left with the worker


def test_idle_daemon_stays_registered_until_stopped(tmp_path):
    """An idle `serve` loop is visible in the lease table the whole time
    (status must not report a live-but-idle fleet as absent)."""
    import threading

    queue = JobQueue(tmp_path)  # empty: the daemon only ever idles
    worker = Worker(queue, worker_id="idle", poll_s=0.01)
    thread = threading.Thread(target=worker.serve)
    thread.start()
    try:
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if any(w["worker"] == "idle" for w in queue.workers()):
                break
            time.sleep(0.01)
        else:
            pytest.fail("idle daemon never registered its lease record")
    finally:
        worker.request_stop()
        thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert queue.workers() == []  # unregistered on the way out


def test_process_returns_false_for_failed_jobs(tmp_path, monkeypatch):
    """`process` means 'acked done' — an accepted failure report is not
    an ack, even though the queue took the report."""
    def exploding_run(*args, **kwargs):
        raise RuntimeError("boom")

    queue = JobQueue(tmp_path)
    queue.submit([TINY, TINY.with_(seeds=(2,))])
    worker = Worker(queue, worker_id="w1")
    (job,) = queue.claim_batch("w1", 1)
    monkeypatch.setattr(worker_mod, "run", exploding_run)
    assert worker.process(job) is False
    monkeypatch.undo()
    (job2,) = queue.claim_batch("w1", 1)
    assert worker.process(job2) is True


def test_bad_batch_size_is_rejected(tmp_path):
    from repro.errors import ConfigurationError

    for bad in (0, -2, 1.5, True):
        with pytest.raises(ConfigurationError, match="batch_size"):
            Worker(JobQueue(tmp_path), batch_size=bad)


def test_requested_stop_exits_the_loops_immediately(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    worker = Worker(queue)
    worker.request_stop()
    assert worker.serve() == 0
    assert worker.drain() == 0
    assert queue.job(1).state != DONE  # the job was left untouched


def test_serve_respects_max_jobs(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY, TINY.with_(seeds=(2,))])
    worker = Worker(queue)
    assert worker.serve(max_jobs=1) == 1
    assert queue.counts()[DONE] == 1


def test_worker_heartbeats_outlive_a_short_lease(tmp_path):
    """A lease much shorter than the job must not lose the job mid-run:
    the heartbeat thread keeps extending it while the simulation runs."""
    queue = JobQueue(tmp_path)
    (job_id,) = queue.submit([ExperimentSpec(
        "table1", duration=0.3, options={"rows": (0,)}
    )])
    worker = Worker(queue, worker_id="w1", lease_s=0.1)
    assert worker.run_one()
    job = queue.job(job_id)
    assert job.state == DONE
    assert job.attempts == 1  # never reclaimed, despite lease << runtime
