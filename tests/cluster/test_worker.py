"""Worker loop tests: run/ack, failure policy, caching, graceful stop."""

from __future__ import annotations

import pytest

import repro.cluster.worker as worker_mod
from repro.api import ExperimentSpec, load_artifact
from repro.cluster import DONE, FAILED, JobQueue, Worker, gather
from repro.errors import JobFailedError

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})


def test_run_one_executes_and_acks(tmp_path):
    queue = JobQueue(tmp_path)
    (job_id,) = queue.submit([TINY])
    worker = Worker(queue, worker_id="w1")
    assert worker.run_one()
    assert not worker.run_one()  # queue is empty now
    assert worker.jobs_run == 1
    job = queue.job(job_id)
    assert job.state == DONE
    assert job.worker == "w1"
    artifact = load_artifact(queue.artifact_dir / f"{job.run_id}.json")
    assert artifact.spec == TINY


def test_drain_finishes_a_sweep_and_gather_returns_it_in_order(tmp_path):
    sweep = ExperimentSpec(
        "table1", duration=0.04, seeds=(3, 1, 2), options={"rows": (0,)}
    ).sweep()
    queue = JobQueue(tmp_path)
    ids = queue.submit(sweep)
    assert Worker(queue).drain() == 3
    artifacts = gather(tmp_path, ids, timeout=5)
    assert [a.spec for a in artifacts] == sweep  # submission order, not seed order


def test_duplicate_specs_across_sweeps_simulate_exactly_once(tmp_path, monkeypatch):
    """The shared artifact cache: the second identical job is a cache hit."""
    freshness = []
    real_run = worker_mod.run

    def spying_run(*args, **kwargs):
        artifact = real_run(*args, **kwargs)
        freshness.append(artifact.from_cache)
        return artifact

    monkeypatch.setattr(worker_mod, "run", spying_run)
    queue = JobQueue(tmp_path)
    queue.submit([TINY])  # sweep 1
    queue.submit([TINY])  # a concurrent sweep resubmits the same spec
    Worker(queue).drain()
    assert freshness == [False, True]


def test_transient_failures_retry_until_the_budget_runs_out(tmp_path, monkeypatch):
    def exploding_run(*args, **kwargs):
        raise RuntimeError("simulated worker crash")

    monkeypatch.setattr(worker_mod, "run", exploding_run)
    queue = JobQueue(tmp_path, max_attempts=3)
    (job_id,) = queue.submit([TINY])
    worker = Worker(queue, worker_id="w1")
    assert worker.drain() == 3  # one execution per attempt, then terminal
    job = queue.job(job_id)
    assert job.state == FAILED
    assert job.attempts == 3
    assert "RuntimeError: simulated worker crash" in job.error
    with pytest.raises(JobFailedError, match="simulated worker crash"):
        gather(tmp_path, [job_id], timeout=5)


def test_config_errors_fail_terminally_without_retries(tmp_path):
    """A deterministic bad spec burns one attempt, not the whole budget."""
    bad = ExperimentSpec("table1", duration=0.04, options={"rows": (99,)})
    queue = JobQueue(tmp_path, max_attempts=3)
    (job_id,) = queue.submit([bad])
    Worker(queue).drain()
    job = queue.job(job_id)
    assert job.state == FAILED
    assert job.attempts == 1
    assert "ConfigurationError" in job.error


def test_requested_stop_exits_the_loops_immediately(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    worker = Worker(queue)
    worker.request_stop()
    assert worker.serve() == 0
    assert worker.drain() == 0
    assert queue.job(1).state != DONE  # the job was left untouched


def test_serve_respects_max_jobs(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY, TINY.with_(seeds=(2,))])
    worker = Worker(queue)
    assert worker.serve(max_jobs=1) == 1
    assert queue.counts()[DONE] == 1


def test_worker_heartbeats_outlive_a_short_lease(tmp_path):
    """A lease much shorter than the job must not lose the job mid-run:
    the heartbeat thread keeps extending it while the simulation runs."""
    queue = JobQueue(tmp_path)
    (job_id,) = queue.submit([ExperimentSpec(
        "table1", duration=0.3, options={"rows": (0,)}
    )])
    worker = Worker(queue, worker_id="w1", lease_s=0.1)
    assert worker.run_one()
    job = queue.job(job_id)
    assert job.state == DONE
    assert job.attempts == 1  # never reclaimed, despite lease << runtime
