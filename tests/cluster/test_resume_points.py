"""Fault injection for preemption-safe resume (:mod:`repro.sim.resume`).

A real process runs a policy-armed experiment and SIGKILLs itself at a
chosen snapshot point — no report, no atexit, exactly the preemption
model.  The retry must discover the snapshots the corpse left behind,
fast-forward from the newest valid one, and produce an artifact
**byte-identical** to an uninterrupted run.  That is the whole contract:
a checkpoint policy may never change results, only how much work a
second attempt repeats.

The matrix covers kill points early/middle/late in a run, two schedulers
by two topologies, all three executors (serial, process pool, durable
queue with a genuinely preempted worker), torn-snapshot healing, and the
interactions that historically make mid-run state capture wrong: branch
warm-up checkpoints, the record-once pre-pass, and metrics-hub sampler
entries.

One fast smoke (single kill point, serial) runs in the default suite;
the full matrix is ``slow`` and selected in CI's stress job with
``-m slow -k resume``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.api import ExperimentSpec, run
from repro.api.runner import CHECKPOINT_SUBDIR, run_many
from repro.cluster import DONE, JobQueue, gather, submit
from repro.sim.checkpoint import CheckpointStore

#: Scale knob for the scheduled CI stress job (see ``test_stress.py``).
SCALE = max(1, int(os.environ.get("REPRO_STRESS_SCALE", "1")))

POLICY = "300ev"
LEASE_S = 0.5

FIG2 = dict(experiment="fig2", schedulers=("fifo",), duration=0.02, seeds=(3,))


def _install_kill_hook(kill_after: int) -> None:
    """SIGKILL this process right after the ``kill_after``-th snapshot.

    The snapshot is fully written (atomic ``os.replace``) before the
    kill, so the retry always has at least ``kill_after`` candidates —
    the crash model is "preempted between instructions", not "torn
    store" (a separate test tears the store on purpose).
    """
    from repro.sim import resume

    original = resume.ResumeSession._record
    state = {"count": 0}

    def record_then_maybe_die(self, network, prefix, index):
        original(self, network, prefix, index)
        state["count"] += 1
        if state["count"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    resume.ResumeSession._record = record_then_maybe_die


def _killed_run(spec_kwargs: dict, out_dir: str, kill_after: int) -> None:
    """Child target: run one policy-armed spec, dying mid-run."""
    _install_kill_hook(kill_after)
    run(ExperimentSpec(**spec_kwargs), out_dir=out_dir,
        checkpoint_policy=POLICY)


def _spawn_killed_run(tmp_path, spec_kwargs: dict, kill_after: int) -> str:
    """Run a spec in a child that self-SIGKILLs; returns its out dir.

    Asserts the child actually died by signal (the run was long enough
    to reach the kill point) and left snapshots behind.
    """
    out = str(tmp_path / "out")
    proc = multiprocessing.get_context().Process(
        target=_killed_run, args=(spec_kwargs, out, kill_after))
    proc.start()
    proc.join(timeout=120.0)
    assert proc.exitcode == -signal.SIGKILL, (
        f"expected the child to die at snapshot {kill_after}, "
        f"got exitcode {proc.exitcode}"
    )
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    assert store.keys(), "killed attempt left no snapshots to resume from"
    return out


def _resume_keys_left(out: str) -> list[str]:
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    return [k for k in store.keys() if k.startswith("resume-")]


def _assert_resumed_identical(out: str, spec: ExperimentSpec,
                              reference: str) -> None:
    """Retry ``spec`` in-process with the policy armed; byte-compare."""
    artifact = run(spec, out_dir=out, checkpoint_policy=POLICY)
    assert artifact.canonical_json() == reference
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    ops = [op for op, _ in store.log_entries()]
    assert "resume" in ops, "retry simulated from scratch — never resumed"
    assert not _resume_keys_left(out), "finished run left its snapshot trail"


# -- the fast smoke (default suite) ----------------------------------------


def test_resume_smoke_serial(tmp_path):
    """One kill point, serial retry: resumed equals straight, trail pruned."""
    spec = ExperimentSpec(**FIG2)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, FIG2, kill_after=3)
    _assert_resumed_identical(out, spec, reference)


# -- the slow matrix --------------------------------------------------------

# Kill points are spread early / middle / late; schedulers x topologies
# ride on the `info` experiment (whose record-once pre-pass must stay
# outside the snapshot phases) and on fig2 (whose driver holds TcpStats
# the restore must graft state into).
MATRIX = [
    ("fig2", {"schedulers": ("fifo",)}, 1),
    ("fig2", {"schedulers": ("sjf",)}, 6),
    ("info", {"schedulers": ("fifo",), "topology": "i2-1g-10g"}, 3),
    ("info", {"schedulers": ("fifo",), "topology": "i2-1g-1g"}, 9),
    ("info", {"schedulers": ("fq",), "topology": "i2-1g-10g"}, 12),
    ("info", {"schedulers": ("fq",), "topology": "i2-1g-1g"}, 5),
]


@pytest.mark.slow
@pytest.mark.parametrize(
    "experiment,fields,kill_after",
    MATRIX,
    ids=[f"{e}-{'-'.join(str(v) for v in f.values())}-k{k}"
         for e, f, k in MATRIX],
)
def test_resume_matrix_byte_identity(tmp_path, experiment, fields, kill_after):
    spec_kwargs = dict(experiment=experiment, duration=0.02, seeds=(3,),
                       **fields)
    spec = ExperimentSpec(**spec_kwargs)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, spec_kwargs, kill_after)
    _assert_resumed_identical(out, spec, reference)


@pytest.mark.slow
def test_resume_torn_newest_snapshot_heals_to_predecessor(tmp_path):
    """Truncating the newest snapshot falls back one rung, not to scratch."""
    spec = ExperimentSpec(**FIG2)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, FIG2, kill_after=4)

    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    keys = _resume_keys_left(out)
    assert len(keys) >= 2, "need a predecessor to heal to (keep>=2)"
    newest = max(keys)
    path = store.path(newest)
    path.write_bytes(path.read_bytes()[:-64])

    artifact = run(spec, out_dir=out, checkpoint_policy=POLICY)
    assert artifact.canonical_json() == reference
    resumed_from = [k for op, k in store.log_entries() if op == "resume"]
    assert resumed_from, "retry never resumed"
    assert resumed_from[-1] != newest, "retry restored the torn snapshot?"
    assert resumed_from[-1] == sorted(set(keys) - {newest})[-1]


@pytest.mark.slow
def test_resume_all_snapshots_torn_heals_to_scratch(tmp_path):
    """With the whole trail torn, the retry restarts and still matches."""
    spec = ExperimentSpec(**FIG2)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, FIG2, kill_after=3)

    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    for key in _resume_keys_left(out):
        path = store.path(key)
        path.write_bytes(path.read_bytes()[:-64])

    artifact = run(spec, out_dir=out, checkpoint_policy=POLICY)
    assert artifact.canonical_json() == reference
    assert not any(op == "resume" for op, _ in store.log_entries())


@pytest.mark.slow
def test_resume_process_executor_sweep(tmp_path):
    """A killed attempt's snapshots are honoured by process-pool retries."""
    legs = ExperimentSpec(**{**FIG2, "seeds": (3, 4)}).sweep()
    reference = [run(s).canonical_json() for s in legs]
    out = _spawn_killed_run(tmp_path, FIG2, kill_after=3)  # kills seed 3

    artifacts = run_many(legs, workers=2, executor="process", out_dir=out,
                         checkpoint_policy=POLICY)
    assert [a.canonical_json() for a in artifacts] == reference
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    assert any(op == "resume" for op, _ in store.log_entries())
    assert not _resume_keys_left(out)


def _drain_with_kill(queue_dir: str, kill_after: int) -> None:
    """Child target: a policy-armed drain worker that dies mid-job."""
    from repro.cluster.worker import drain_queue

    _install_kill_hook(kill_after)
    drain_queue(queue_dir, batch_size=1, lease_s=LEASE_S,
                checkpoint_policy=POLICY)


@pytest.mark.slow
def test_resume_preempted_queue_worker(tmp_path):
    """The real preemption story, end to end on the durable queue.

    Worker 1 is SIGKILLed mid-simulation.  Lease expiry reclaims its
    job; worker 2 (same policy) picks it up, finds the snapshots under
    the job's run id, resumes, and the gathered sweep is byte-identical
    to straight runs.
    """
    from repro.cluster.worker import drain_queue

    legs = ExperimentSpec(**{**FIG2, "seeds": (3, 4)}).sweep()
    reference = [run(s).canonical_json() for s in legs]

    qdir = tmp_path / "q"
    queue = JobQueue(qdir, default_lease_s=LEASE_S)
    job_ids = submit(legs, qdir)
    proc = multiprocessing.get_context().Process(
        target=_drain_with_kill, args=(str(qdir), 3))
    proc.start()
    proc.join(timeout=120.0)
    assert proc.exitcode == -signal.SIGKILL

    time.sleep(LEASE_S * 1.5)  # the corpse's lease must lapse first
    drain_queue(str(qdir), lease_s=LEASE_S, batch_size=1,
                checkpoint_policy=POLICY)
    artifacts = gather(qdir, job_ids, timeout=120.0)

    assert queue.counts()[DONE] == len(legs)
    assert [a.canonical_json() for a in artifacts] == reference
    store = CheckpointStore(qdir / "artifacts" / CHECKPOINT_SUBDIR)
    assert any(op == "resume" for op, _ in store.log_entries()), (
        "retry worker simulated the preempted job from scratch"
    )
    assert not any(k.startswith("resume-") for k in store.keys())


@pytest.mark.slow
def test_resume_with_branch_checkpoints(tmp_path):
    """Mid-run snapshots compose with warm-up (branch) checkpoints.

    The branch experiment's warm-up builder runs suspended (it must not
    consume phase ordinals), its checkpoint is built exactly once, and
    the killed leg's retry resumes on top of the warm-up credit.
    """
    spec_kwargs = dict(experiment="branch", duration=0.02, seeds=(1,),
                       options={"warmup": 0.05})
    spec = ExperimentSpec(**spec_kwargs)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, spec_kwargs, kill_after=2)
    _assert_resumed_identical(out, spec, reference)
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    warmup_builds = [k for k in store.built_keys()
                     if not k.startswith("resume-")]
    assert len(warmup_builds) == 1, (
        f"warm-up must be built exactly once, saw {warmup_builds}"
    )


@pytest.mark.slow
def test_resume_record_once_pre_pass_stays_single(tmp_path):
    """The record-once pre-pass is not re-recorded by a resumed retry."""
    from repro.core.trace_io import ScheduleStore

    spec_kwargs = dict(experiment="info", schedulers=("fifo",),
                       duration=0.02, seeds=(2,))
    spec = ExperimentSpec(**spec_kwargs)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, spec_kwargs, kill_after=4)
    _assert_resumed_identical(out, spec, reference)
    schedules = ScheduleStore(os.path.join(out, "schedules"))
    assert len(schedules.recorded_keys()) == 1


@pytest.mark.slow
@pytest.mark.parametrize("obs_on_retry", [True, False],
                         ids=["retry-with-obs", "retry-without-obs"])
def test_resume_is_telemetry_independent(tmp_path, obs_on_retry):
    """Telemetry on either attempt changes nothing about the resume.

    Sampler entries are dropped from snapshots and the anchor walk runs
    with the observer detached, so a killed attempt without a hub can be
    resumed by a retry with one (and vice versa) — byte-identically.
    """
    from repro.obs.hub import MetricsHub

    spec = ExperimentSpec(**FIG2)
    reference = run(spec).canonical_json()
    out = _spawn_killed_run(tmp_path, FIG2, kill_after=3)

    hub = MetricsHub(interval=0.001) if obs_on_retry else None
    artifact = run(spec, out_dir=out, checkpoint_policy=POLICY, obs=hub)
    assert artifact.canonical_json() == reference
    store = CheckpointStore(os.path.join(out, CHECKPOINT_SUBDIR))
    assert any(op == "resume" for op, _ in store.log_entries())
    if obs_on_retry:
        # The hub observed the resumed tail of the run: it must hold
        # real samples, proving reattachment re-armed the sampler.
        assert hub.counters, "hub saw nothing after the resume"
