"""Resume-after-SIGKILL for branch sweeps (the nightly stress variant).

A real worker process runs a branch sweep off a durable queue and is
SIGKILLed mid-sweep — no report, no heartbeat, no atexit.  Lease expiry
must hand its batch to a second worker, and the drained sweep's
artifacts must still be byte-identical to simulating every leg from
scratch, even when the shared warm-up checkpoint it left behind was torn
by the crash.  This is the crash-safety end of the simulate-once
contract: ``tests/experiments/test_branch.py`` proves the identity on
the happy path, this file proves it survives worker death.

Marked ``slow``: CI runs it in the scheduled/label-triggered stress job;
locally ``pytest -m slow tests/cluster`` selects it.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.api import ExperimentSpec, run
from repro.cluster import DONE, JobQueue, gather, submit
from repro.cluster.worker import drain_queue
from repro.sim.checkpoint import CheckpointStore

pytestmark = pytest.mark.slow

#: Scale knob for the scheduled CI job (see ``test_stress.py``).
SCALE = max(1, int(os.environ.get("REPRO_STRESS_SCALE", "1")))

LEASE_S = 0.5


def _sweep(n: int) -> list[ExperimentSpec]:
    return ExperimentSpec(
        "branch", duration=0.02, seeds=tuple(range(1, n + 1)),
        options={"warmup": 0.05},
    ).sweep()


def _kill_after_first_done(queue: JobQueue, proc) -> int:
    """SIGKILL ``proc`` once at least one job is done; done count then."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        done = queue.counts()[DONE]
        if done >= 1:
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30.0)
            assert not proc.is_alive(), "worker survived SIGKILL?"
            return done
        time.sleep(0.001)
    pytest.fail("first worker never finished a job — queue wedged?")


def _drain_killed_mid_job(queue_dir: str, kill_after: int,
                          policy: str) -> None:
    """Child target: policy-armed drain worker SIGKILLed mid-simulation."""
    from repro.cluster.worker import drain_queue
    from repro.sim import resume

    original = resume.ResumeSession._record
    state = {"count": 0}

    def record_then_maybe_die(self, network, prefix, index):
        original(self, network, prefix, index)
        state["count"] += 1
        if state["count"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    resume.ResumeSession._record = record_then_maybe_die
    drain_queue(queue_dir, batch_size=1, lease_s=LEASE_S,
                checkpoint_policy=policy)


def test_sigkilled_mid_job_sweep_resumes_mid_run(tmp_path):
    """The stress variant of the mid-run resume contract.

    Unlike the between-jobs kill below, the worker here dies *inside* a
    simulation with a checkpoint policy armed, so the retrying worker
    must fast-forward from the corpse's mid-run snapshots — and the
    whole drained sweep must still be byte-identical to scratch runs.
    """
    legs = _sweep(4 * SCALE)
    reference = [run(s).canonical_json() for s in legs]

    queue = JobQueue(tmp_path / "q", default_lease_s=LEASE_S)
    job_ids = submit(legs, tmp_path / "q")
    ctx = multiprocessing.get_context()
    proc = ctx.Process(target=_drain_killed_mid_job,
                       args=(str(tmp_path / "q"), 2, "300ev"))
    proc.start()
    proc.join(timeout=60.0)
    assert proc.exitcode == -signal.SIGKILL

    time.sleep(LEASE_S * 1.5)
    drain_queue(str(tmp_path / "q"), lease_s=LEASE_S, batch_size=2,
                checkpoint_policy="300ev")
    artifacts = gather(tmp_path / "q", job_ids, timeout=120.0)

    assert queue.counts()[DONE] == len(legs)
    assert [a.canonical_json() for a in artifacts] == reference
    store = CheckpointStore(tmp_path / "q" / "artifacts" / "checkpoints")
    ops = [op for op, _ in store.log_entries()]
    assert "resume" in ops, "retry worker never fast-forwarded"
    assert not any(k.startswith("resume-") for k in store.keys()), (
        "completed sweep left mid-run snapshots behind"
    )


@pytest.mark.parametrize("tear_checkpoint", [False, True],
                         ids=["clean-store", "torn-checkpoint"])
def test_sigkilled_branch_sweep_resumes_byte_identical(
    tmp_path, tear_checkpoint
):
    legs = _sweep(8 * SCALE)
    reference = [run(s).canonical_json() for s in legs]

    queue = JobQueue(tmp_path / "q", default_lease_s=LEASE_S)
    job_ids = submit(legs, tmp_path / "q")
    ctx = multiprocessing.get_context()
    # batch_size=1 so the victim holds exactly the job it is running —
    # the kill window (≥1 done, ≥1 pending) stays wide open
    proc = ctx.Process(
        target=drain_queue, args=(str(tmp_path / "q"),),
        kwargs={"batch_size": 1, "lease_s": LEASE_S},
    )
    proc.start()
    done_at_kill = _kill_after_first_done(queue, proc)

    if tear_checkpoint:
        # the crash model extends to the store: a torn warm-up
        # checkpoint must read as a miss and be rebuilt, not poison
        # every remaining leg
        store = CheckpointStore(tmp_path / "q" / "artifacts" / "checkpoints")
        for key in store.keys():
            path = store.path(key)
            path.write_bytes(path.read_bytes()[:-64])

    # the victim's held job sits behind its lease until expiry
    time.sleep(LEASE_S * 1.5)
    drain_queue(str(tmp_path / "q"), lease_s=LEASE_S, batch_size=2)
    artifacts = gather(tmp_path / "q", job_ids, timeout=120.0)

    assert queue.counts()[DONE] == len(legs)
    assert [a.canonical_json() for a in artifacts] == reference
    # the kill landed mid-sweep, so the resume actually resumed
    assert done_at_kill < len(legs)
