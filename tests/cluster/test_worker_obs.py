"""Worker-side observability: span log, flight recorder, failure dumps."""

from __future__ import annotations

import signal

import pytest

from repro.api import ExperimentSpec
from repro.api.runner import OBS_ENV
from repro.cluster import FAILED, JobQueue, Worker
from repro.obs.spans import read_span_records

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})
BROKEN = ExperimentSpec("table1", duration=0.04, options={"rows": (99,)})


def test_worker_appends_one_span_per_executed_job(tmp_path):
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    Worker(queue, worker_id="w1").drain()
    records = read_span_records(tmp_path)
    assert len(records) == 1
    (record,) = records
    assert record["cat"] == "job"
    assert record["tid"] == "w1"
    assert record["args"]["ok"] is True
    assert record["name"].startswith("table1/")


def test_failed_jobs_get_a_span_with_ok_false(tmp_path):
    queue = JobQueue(tmp_path, max_attempts=1)
    queue.submit([BROKEN])
    Worker(queue).drain()
    (record,) = read_span_records(tmp_path)
    assert record["args"]["ok"] is False


def test_flight_recorder_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv(OBS_ENV, raising=False)
    worker = Worker(JobQueue(tmp_path))
    assert worker.flight is None


def test_flight_recorder_armed_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv(OBS_ENV, "1")
    worker = Worker(JobQueue(tmp_path))
    assert worker.flight is not None


def test_failure_records_carry_a_flight_dump_when_armed(tmp_path, monkeypatch):
    monkeypatch.setenv(OBS_ENV, "1")
    queue = JobQueue(tmp_path, max_attempts=1)
    # TINY runs first (fills the ring), then BROKEN fails before any
    # engine event — the dump must reflect only the failing job.
    ids = queue.submit([TINY, BROKEN])
    Worker(queue).drain()
    job = queue.job(ids[1])
    assert job.state == FAILED
    assert "out of range" in job.error
    # The ring is cleared per job; a pre-simulation config error has no
    # engine events, so no flight block is attached.
    assert "flight recorder" not in job.error


def test_failure_dump_includes_engine_tail_for_midrun_crashes(
        tmp_path, monkeypatch):
    monkeypatch.setenv(OBS_ENV, "1")
    import repro.cluster.worker as worker_mod

    real_run = worker_mod.run

    def crashing_run(spec, **kwargs):
        artifact = real_run(spec, **kwargs)
        raise RuntimeError("post-simulation crash")

    monkeypatch.setattr(worker_mod, "run", crashing_run)
    queue = JobQueue(tmp_path, max_attempts=1)
    (job_id,) = queue.submit([TINY])
    Worker(queue).drain()
    job = queue.job(job_id)
    assert job.state == FAILED
    assert "RuntimeError: post-simulation crash" in job.error
    assert "flight recorder" in job.error
    assert "t=" in job.error  # the engine-event tail made it into the record


@pytest.mark.skipif(not hasattr(signal, "SIGUSR1"),
                    reason="platform has no SIGUSR1")
def test_sigusr1_dumps_flight_state_to_stderr(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(OBS_ENV, "1")
    queue = JobQueue(tmp_path)
    queue.submit([TINY])
    worker = Worker(queue)
    worker.install_signal_handlers()
    try:
        worker.drain()
        signal.raise_signal(signal.SIGUSR1)
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT, signal.SIGUSR1):
            signal.signal(sig, signal.SIG_DFL)
    err = capsys.readouterr().err
    assert "flight recorder" in err


@pytest.mark.skipif(not hasattr(signal, "SIGUSR1"),
                    reason="platform has no SIGUSR1")
def test_sigusr1_without_obs_explains_how_to_arm(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv(OBS_ENV, raising=False)
    worker = Worker(JobQueue(tmp_path))
    worker.install_signal_handlers()
    try:
        signal.raise_signal(signal.SIGUSR1)
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT, signal.SIGUSR1):
            signal.signal(sig, signal.SIG_DFL)
    assert "REPRO_OBS=1" in capsys.readouterr().err
