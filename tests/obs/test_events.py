"""Unit tests for the cluster event log primitives."""

from __future__ import annotations

import threading

from repro.obs.events import (
    append_events,
    events_path,
    follow_events,
    format_event,
    read_events,
)


def test_append_and_read_roundtrip(tmp_path):
    events = [
        {"ts": 1.0, "kind": "submit", "job": 1, "run_id": "r1"},
        {"ts": 2.0, "kind": "claim", "job": 1, "worker": "w"},
    ]
    append_events(tmp_path, events)
    assert read_events(tmp_path) == events


def test_append_empty_list_creates_no_file(tmp_path):
    append_events(tmp_path, [])
    assert not events_path(tmp_path).exists()


def test_read_limit_keeps_the_tail(tmp_path):
    append_events(tmp_path, [{"ts": float(i), "kind": "hb"} for i in range(5)])
    tail = read_events(tmp_path, limit=2)
    assert [e["ts"] for e in tail] == [3.0, 4.0]


def test_read_kinds_filters(tmp_path):
    append_events(tmp_path, [
        {"ts": 1.0, "kind": "claim", "job": 1},
        {"ts": 2.0, "kind": "heartbeat", "worker": "w"},
        {"ts": 3.0, "kind": "ack", "job": 1},
    ])
    kinds = [e["kind"] for e in read_events(tmp_path, kinds=("claim", "ack"))]
    assert kinds == ["claim", "ack"]


def test_read_missing_log_is_empty_history(tmp_path):
    assert read_events(tmp_path) == []


def test_follow_yields_appended_records(tmp_path):
    append_events(tmp_path, [{"ts": 1.0, "kind": "old"}])
    seen: list[dict] = []
    done = threading.Event()

    def drain():
        for event in follow_events(tmp_path, poll_s=0.01, from_start=True,
                                   stop=done.is_set):
            seen.append(event)
            if len(seen) == 3:
                done.set()

    thread = threading.Thread(target=drain)
    thread.start()
    append_events(tmp_path, [{"ts": 2.0, "kind": "claim", "job": 1}])
    append_events(tmp_path, [{"ts": 3.0, "kind": "ack", "job": 1}])
    thread.join(timeout=5.0)
    done.set()
    assert not thread.is_alive()
    assert [e["kind"] for e in seen] == ["old", "claim", "ack"]


def test_follow_without_from_start_skips_existing_records(tmp_path):
    append_events(tmp_path, [{"ts": 1.0, "kind": "old"}])
    # One poll cycle, then stop: the pre-existing record is never yielded
    # (the offset starts at the end of the log).
    flags = iter([False, True])
    events = list(follow_events(tmp_path, poll_s=0.0,
                                stop=lambda: next(flags)))
    assert events == []


def test_follow_from_start_replays_history(tmp_path):
    append_events(tmp_path, [{"ts": 1.0, "kind": "submit", "job": 1}])
    stop_after_first = iter([False, True])
    events = list(follow_events(tmp_path, poll_s=0.01, from_start=True,
                                stop=lambda: next(stop_after_first)))
    assert [e["kind"] for e in events] == ["submit"]


def test_format_event_renders_sorted_details():
    line = format_event({"ts": 0.0, "kind": "claim", "worker": "w", "job": 3})
    assert "claim" in line
    assert line.index("job=3") < line.index("worker=w")


def test_format_event_skips_none_values_and_missing_ts():
    line = format_event({"kind": "reclaim", "job": 2, "error": None})
    assert line.startswith("--:--:--")
    assert "error" not in line
