"""CLI coverage for the observability verbs: profile, trace, tail."""

from __future__ import annotations

import json

from repro.api import ExperimentSpec
from repro.cli import main
from repro.cluster import JobQueue
from repro.obs.spans import append_span_record, span_record

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})


def _chrome_doc(path):
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    for event in doc["traceEvents"]:
        assert event["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
    return doc


def test_profile_prints_phases_and_top_callbacks(capsys):
    assert main(["profile", "table1", "--rows", "0",
                 "--duration", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "repro profile table1" in out
    assert "simulate" in out
    assert "engine events:" in out
    assert "top callbacks" in out


def test_profile_fig2_single_row_slice(capsys):
    assert main(["profile", "fig2", "--rows", "1",
                 "--duration", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "1 leg(s)" in out


def test_profile_json_payload_and_trace_export(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["profile", "table1", "--rows", "0", "--duration", "0.04",
                 "--trace", str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "table1"
    assert payload["legs"] == 1
    assert payload["engine_events"] > 0
    assert payload["phases"]
    assert payload["top_callbacks"]
    assert payload["obs"]["counters"]
    doc = _chrome_doc(trace)
    assert any(e["name"] == "simulate" for e in doc["traceEvents"])


def test_profile_rejects_bad_rows(capsys):
    assert main(["profile", "fig2", "--rows", "99",
                 "--duration", "0.02"]) == 2
    assert "out of range" in capsys.readouterr().err


def test_trace_experiment_mode_writes_chrome_json(tmp_path, capsys):
    out = tmp_path / "t.json"
    assert main(["trace", "table1", "--rows", "0", "--duration", "0.04",
                 "--out", str(out)]) == 0
    _chrome_doc(out)


def test_trace_queue_mode_folds_span_log(tmp_path, capsys):
    queue_dir = tmp_path / "q"
    JobQueue(queue_dir)
    append_span_record(queue_dir, span_record("job-1", 1.0, 0.5, cat="job",
                                              tid="w1"))
    out = tmp_path / "t.json"
    assert main(["trace", str(queue_dir), "--out", str(out)]) == 0
    doc = _chrome_doc(out)
    assert [e["name"] for e in doc["traceEvents"]] == ["job-1"]


def test_trace_queue_mode_without_spans_is_a_clean_error(tmp_path, capsys):
    queue_dir = tmp_path / "q"
    JobQueue(queue_dir)
    assert main(["trace", str(queue_dir)]) == 2
    assert "no span records" in capsys.readouterr().err


def test_tail_once_prints_recent_events(tmp_path, capsys):
    queue_dir = tmp_path / "q"
    JobQueue(queue_dir).submit([TINY])
    assert main(["tail", str(queue_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "submit" in out


def test_tail_rejects_a_nonexistent_queue(tmp_path, capsys):
    assert main(["tail", str(tmp_path / "nope"), "--once"]) == 2
    assert "error:" in capsys.readouterr().err


def test_tail_once_without_events_reports_and_exits_zero(tmp_path, capsys):
    # A queue that exists but has produced no events.jsonl yet is a
    # state, not an error: say so and exit 0 (scripts probe with it).
    queue_dir = tmp_path / "q"
    JobQueue(queue_dir)
    (queue_dir / "events.jsonl").unlink(missing_ok=True)
    assert main(["tail", str(queue_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "no events" in out
    assert str(queue_dir) in out


def test_status_events_flag(tmp_path, capsys):
    queue_dir = tmp_path / "q"
    JobQueue(queue_dir).submit([TINY])
    assert main(["status", "--queue", str(queue_dir), "--events", "5"]) == 0
    assert "recent events:" in capsys.readouterr().out
