"""Unit tests for the crash flight recorder."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.obs import FlightRecorder


def _cb_a():
    pass


def _cb_b():
    pass


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        FlightRecorder(capacity=0)


def test_ring_keeps_only_the_tail():
    flight = FlightRecorder(capacity=3)
    for i in range(5):
        flight.note(float(i), _cb_a)
    assert flight.total == 5
    assert [t for t, _ in flight.tail()] == [2.0, 3.0, 4.0]
    assert flight.counts[_cb_a.__qualname__] == 5


def test_tail_limit_returns_most_recent():
    flight = FlightRecorder(capacity=8)
    for i in range(4):
        flight.note(float(i), _cb_a)
    assert [t for t, _ in flight.tail(limit=2)] == [2.0, 3.0]


def test_top_ranks_by_count_then_name():
    flight = FlightRecorder()
    for _ in range(3):
        flight.note(0.0, _cb_b)
    flight.note(0.0, _cb_a)
    names = [name for name, _ in flight.top(2)]
    assert names == [_cb_b.__qualname__, _cb_a.__qualname__]


def test_bound_methods_attribute_to_the_class_qualname():
    class Widget:
        def fire(self):
            pass

    flight = FlightRecorder()
    # Two distinct bound-method objects must merge into one count.
    flight.note(0.0, Widget().fire)
    flight.note(1.0, Widget().fire)
    assert flight.counts == {Widget.fire.__qualname__: 2}


def test_clear_resets_everything():
    flight = FlightRecorder(capacity=2)
    flight.note(0.0, _cb_a)
    flight.clear()
    assert flight.total == 0
    assert flight.counts == {}
    assert flight.tail() == []


def test_dump_mentions_totals_top_and_tail():
    flight = FlightRecorder()
    flight.note(0.125, _cb_a)
    dump = flight.dump()
    assert "1 events noted" in dump
    assert _cb_a.__qualname__ in dump
    assert "t=0.125" in dump


def test_recorder_pickles_because_names_are_resolved_eagerly():
    flight = FlightRecorder(capacity=4)
    flight.note(0.5, _cb_a)
    clone = pickle.loads(pickle.dumps(flight))
    assert clone.tail() == flight.tail()
    assert clone.counts == flight.counts
