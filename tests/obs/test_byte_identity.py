"""The observability determinism contract, end to end.

The whole point of sim-time telemetry riding the engine's own heap is
that it must be *free* in the only currency that matters here: the
canonical artifact bytes.  These tests pin that invariant for the
``run`` entry point, the process-pool executor, the queue executor, and
the checkpoint/branch machinery.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, run, run_many
from repro.api.runner import OBS_ENV, obs_enabled_from_env
from repro.obs import MetricsHub, use_metrics_hub
from repro.sim.checkpoint import (
    restore_snapshot,
    snapshot_from_bytes,
    snapshot_network,
    snapshot_to_bytes,
)
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})
SWEEP = ExperimentSpec("table1", duration=0.04, seeds=(1, 2),
                       options={"rows": (0,)}).sweep()


def _canonical(artifacts):
    return [a.canonical_json() for a in artifacts]


def test_obs_env_switch(monkeypatch):
    monkeypatch.delenv(OBS_ENV, raising=False)
    assert not obs_enabled_from_env()
    monkeypatch.setenv(OBS_ENV, "0")
    assert not obs_enabled_from_env()
    monkeypatch.setenv(OBS_ENV, "1")
    assert obs_enabled_from_env()


def test_run_bytes_identical_with_obs_on_and_off():
    off = run(TINY)
    on = run(TINY, obs=True)
    assert on.canonical_json() == off.canonical_json()
    assert on.metadata["engine_events"] == off.metadata["engine_events"]
    # ... but the on-run carries telemetry next to the timing section.
    assert off.obs is None
    assert on.obs is not None
    assert on.obs["counters"]
    assert "obs" in on.to_dict()
    assert "obs" not in off.to_dict()


def test_obs_section_rides_with_timings_not_canonical_json():
    artifact = run(TINY, obs=True)
    assert "obs" not in artifact.to_dict(include_timings=False)
    assert "obs" in artifact.to_dict(include_timings=True)


def test_caller_supplied_hub_is_used_and_populated():
    hub = MetricsHub()
    artifact = run(TINY, obs=hub)
    assert artifact.obs == hub.summary()


@pytest.mark.parametrize("kwargs", [{"workers": 2}, {"executor": "queue"}])
def test_executors_byte_identical_with_obs_enabled(tmp_path, monkeypatch,
                                                   kwargs):
    if "executor" in kwargs:
        kwargs = dict(kwargs, queue_dir=tmp_path / "q",
                      out_dir=tmp_path / "artifacts")
    monkeypatch.delenv(OBS_ENV, raising=False)
    baseline = run_many(SWEEP, workers=1)
    monkeypatch.setenv(OBS_ENV, "1")
    observed = run_many(SWEEP, **kwargs)
    assert _canonical(observed) == _canonical(baseline)


def _loaded_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    for _ in range(4):
        net.inject_at(0.0, make_packet())
    return net


def test_sampler_entries_are_dropped_from_checkpoints():
    samples: list[float] = []
    observed, bare = Engine(), Engine()
    for engine in (observed, bare):
        engine.schedule(0.002, lambda: None)
        engine.schedule(0.004, lambda: None)
    observed.schedule_sample(0.001, lambda: samples.append(observed.now))
    observed.schedule_sample(0.003, lambda: samples.append(observed.now))
    state = observed.checkpoint()
    # Only the two simulation events survive, with heap keys untouched.
    assert [entry[:2] for entry in state["heap"]] == \
        [entry[:2] for entry in bare.checkpoint()["heap"]]
    # The live engine still fires its samplers in time order.
    observed.run()
    assert samples == [0.001, 0.003]


def test_branch_from_pickled_checkpoint_reports_into_the_live_hub():
    base = _loaded_net()
    base.run(until=0.001)
    plain = restore_snapshot(snapshot_network(base))
    plain.run()
    baseline_events = plain.engine.events_processed

    hub = MetricsHub()
    with use_metrics_hub(hub):
        warm = _loaded_net()
        warm.run(until=0.001)
        frozen = snapshot_to_bytes(snapshot_network(warm))
        branch = restore_snapshot(snapshot_from_bytes(frozen))
        assert branch is not warm  # an independent, unpickled copy
        branch.run()
    # The restored leg reports into the live hub yet counts identically.
    assert branch.engine.events_processed == baseline_events
    assert branch.obs is hub
    assert hub.series_points("queue_depth:a->b")
