"""Unit tests for the sim-time metrics hub."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsHub, active_metrics_hub, use_metrics_hub
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 80 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def _run_traffic(hub: MetricsHub | None = None) -> MetricsHub | None:
    with use_metrics_hub(hub):
        net = _net()
        for _ in range(5):
            net.inject_at(0.0, make_packet())
        net.run()
    return hub


def test_interval_must_be_positive():
    with pytest.raises(ConfigurationError):
        MetricsHub(interval=0.0)


def test_ambient_hub_attaches_to_networks_built_inside_the_block():
    hub = MetricsHub()
    with use_metrics_hub(hub):
        assert active_metrics_hub() is hub
        net = _net()
        assert net.obs is hub
    assert active_metrics_hub() is None
    outside = _net()
    assert outside.obs is None


def test_counters_and_series_populate_during_a_run():
    hub = _run_traffic(MetricsHub())
    sent = hub.counters["tx_bytes:a->SW"]
    assert sent > 0
    assert hub.counters["tx_bytes:SW->b"] == sent  # all 5 packets relayed
    points = hub.series_points("queue_depth:SW->b")
    assert points, "periodic sampling never fired"
    assert max(v for _, v in points) >= 1  # the 8 Mbps hop queues
    util = hub.series_points("link_util:SW->b")
    assert util and all(0.0 <= v <= 1.0 for _, v in util)


def test_summary_is_deterministic_across_runs():
    first = _run_traffic(MetricsHub()).summary()
    second = _run_traffic(MetricsHub()).summary()
    assert first == second
    assert list(first["counters"]) == sorted(first["counters"])
    assert list(first["series"]) == sorted(first["series"])


def test_summary_series_digest_shape():
    summary = _run_traffic(MetricsHub()).summary()
    digest = summary["series"]["queue_depth:SW->b"]
    assert set(digest) == {"samples", "t_last", "min", "max", "mean"}
    assert digest["min"] <= digest["mean"] <= digest["max"]


def test_run_without_hub_records_nothing_and_matches_event_count():
    with use_metrics_hub(None):
        bare = _net()
        for _ in range(5):
            bare.inject_at(0.0, make_packet())
        bare.run()
    hub = MetricsHub()
    with use_metrics_hub(hub):
        observed = _net()
        for _ in range(5):
            observed.inject_at(0.0, make_packet())
        observed.run()
    # Sampler events are excluded from accounting: identical counts.
    assert observed.engine.events_processed == bare.engine.events_processed


def test_attach_is_idempotent_per_network():
    hub = MetricsHub()
    net = _net()
    hub.attach(net)
    hub.attach(net)
    assert len(hub._net_samplers) == 1


def test_custom_sampler_called_each_tick():
    hub = MetricsHub()
    with use_metrics_hub(hub):
        net = _net()
        hub.add_sampler("queued_total", lambda now: float(net.engine.pending_events))
        net.inject_at(0.0, make_packet())
        net.run()
    points = hub.series_points("queued_total")
    assert points
    assert hub.series["queue_depth:a->SW"][0][0] == pytest.approx(hub.interval)
