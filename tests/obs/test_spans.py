"""Unit tests for span recording and Chrome-trace export."""

from __future__ import annotations

import json

from repro.obs.spans import (
    SpanRecorder,
    append_span_record,
    chrome_trace_document,
    read_span_records,
    span_record,
    write_chrome_trace,
)


def test_span_record_shape():
    record = span_record("simulate", 10.0, 0.25, tid="w1", args={"legs": 3})
    assert record["ph"] == "X"
    assert record["ts"] == 10.0 * 1e6
    assert record["dur"] == 0.25 * 1e6
    assert record["tid"] == "w1"
    assert record["args"] == {"legs": 3}


def test_recorder_disabled_records_nothing():
    recorder = SpanRecorder()
    with recorder.span("phase-a"):
        pass
    assert recorder.records == []


def test_recorder_enabled_records_and_breaks_down():
    recorder = SpanRecorder(tid="t")
    recorder.enable()
    with recorder.span("outer", legs=2):
        with recorder.span("inner"):
            pass
    recorder.disable()
    assert [r["name"] for r in recorder.records] == ["inner", "outer"]
    assert recorder.records[1]["args"] == {"legs": 2}
    names = [name for name, _ in recorder.breakdown()]
    assert set(names) == {"inner", "outer"}


def test_span_survives_exceptions():
    recorder = SpanRecorder()
    recorder.enable()
    try:
        with recorder.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [r["name"] for r in recorder.records] == ["failing"]


def test_append_and_read_roundtrip(tmp_path):
    first = span_record("job-1", 1.0, 0.5, cat="job", tid="w1")
    second = span_record("job-2", 2.0, 0.5, cat="job", tid="w2")
    append_span_record(tmp_path, first)
    append_span_record(tmp_path, second)
    assert read_span_records(tmp_path) == [first, second]


def test_read_span_records_empty_when_no_file(tmp_path):
    assert read_span_records(tmp_path) == []


def test_chrome_trace_document_sorts_by_timestamp():
    late = span_record("late", 5.0, 0.1)
    early = span_record("early", 1.0, 0.1)
    doc = chrome_trace_document([late, early])
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert [e["name"] for e in doc["traceEvents"]] == ["early", "late"]


def test_write_chrome_trace_is_loadable_json(tmp_path):
    out = write_chrome_trace(tmp_path / "trace.json",
                             [span_record("simulate", 0.0, 1.0)])
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    event = doc["traceEvents"][0]
    assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
    assert event["ph"] == "X"
