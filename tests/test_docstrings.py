"""The public API surface is documented: every exported symbol of
``repro``, ``repro.api.*``, ``repro.cluster.client`` and
``repro.core.replay`` carries a docstring whose first line is a usable
one-line summary, and the public methods of exported classes in the
API/cluster/replay modules are documented too.

This is the enforcement half of the documentation satellite: ``docs/``
explains the system, this test keeps the in-code reference from rotting.
"""

from __future__ import annotations

import inspect

import pytest

import repro
import repro.api
import repro.api.registry
import repro.api.results
import repro.api.runner
import repro.api.spec
import repro.cluster.client
import repro.core.replay
import repro.core.trace_io

#: The modules whose ``__all__`` must be fully documented, classes
#: included method-by-method.
STRICT_MODULES = (
    repro.api,
    repro.api.registry,
    repro.api.results,
    repro.api.runner,
    repro.api.spec,
    repro.cluster.client,
    repro.core.replay,
    repro.core.trace_io,
)


def _documentable(obj: object) -> bool:
    """Things that can carry a docstring (skip data constants/tuples)."""
    return (
        inspect.ismodule(obj)
        or inspect.isclass(obj)
        or inspect.isfunction(obj)
        or inspect.ismethod(obj)
    )


def _summary_line(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


def _assert_documented(owner: str, name: str, obj: object) -> None:
    summary = _summary_line(obj)
    assert summary, f"{owner}.{name} has no docstring"
    assert len(summary) > 10, (
        f"{owner}.{name} docstring summary line is too thin: {summary!r}"
    )


def test_top_level_exports_are_documented():
    """Every documentable name in ``repro.__all__`` has a summary line."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if _documentable(obj):
            _assert_documented("repro", name, obj)


@pytest.mark.parametrize(
    "module", STRICT_MODULES, ids=lambda m: m.__name__
)
def test_module_exports_are_documented(module):
    """Every ``__all__`` entry of the strict modules has a docstring."""
    assert inspect.getdoc(module), f"{module.__name__} has no module docstring"
    for name in module.__all__:
        obj = getattr(module, name)
        if _documentable(obj):
            _assert_documented(module.__name__, name, obj)


def _public_members(cls):
    """(name, member) pairs for methods/properties defined on ``cls``."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            yield name, member.__func__
        elif inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize(
    "module", STRICT_MODULES, ids=lambda m: m.__name__
)
def test_exported_class_methods_are_documented(module):
    """Public methods and properties of exported classes have docstrings."""
    for name in module.__all__:
        obj = getattr(module, name)
        if not inspect.isclass(obj) or obj.__module__ != module.__name__:
            continue
        for member_name, member in _public_members(obj):
            _assert_documented(
                f"{module.__name__}.{name}", member_name, member
            )


def test_exported_functions_mention_their_parameters():
    """Multi-parameter exported functions document at least one parameter.

    A light-touch args/returns check: a function with several
    caller-facing parameters must name at least one of them in its
    docstring (numpydoc ``Parameters`` sections and prose both count).
    """
    for module in STRICT_MODULES:
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isfunction(obj) or obj.__module__ != module.__name__:
                continue
            params = [
                p for p in inspect.signature(obj).parameters
                if p not in ("self", "args", "kwargs")
            ]
            if len(params) < 2:
                continue
            doc = inspect.getdoc(obj) or ""
            assert any(p in doc for p in params), (
                f"{module.__name__}.{name} documents none of its "
                f"parameters {params}"
            )
