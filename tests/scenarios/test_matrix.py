"""The scenario-matrix experiment: driver, sweep axis, byte-identity.

The acceptance tests of the scenario subsystem: a (scenario × scheduler
× seed) sweep must gather byte-identical artifacts under the serial,
process, and queue executors, and the fairness/utilisation summaries
must land in artifact metadata rounded exactly as the golden metric
tests lock down.
"""

from __future__ import annotations

import os

import pytest

from repro.api import ExperimentSpec, run, run_many
from repro.errors import ConfigurationError
from repro.experiments import run_scenario_leg
from repro.scenarios import get_scenario

#: Nightly-stress multiplier (1 in tier-1; the stress job raises it).
SCALE = max(1, int(os.environ.get("REPRO_STRESS_SCALE", "1")))

TINY = dict(duration=0.006, bandwidth_scale=0.01)

SWEEP = ExperimentSpec(
    "scenario-matrix",
    schedulers=("fifo",),
    scenarios=("websearch-incast", "datamining-a2a"),
    seeds=(1, 2),
    **TINY,
).sweep()


class TestDriver:
    def test_one_row_per_scheduler(self):
        artifact = run(ExperimentSpec(
            "scenario-matrix", schedulers=("fifo", "fq"),
            scenarios=("websearch-incast",), **TINY))
        assert [row[2] for row in artifact.rows] == ["fifo", "fq"]
        assert all(row[0] == "websearch-incast" for row in artifact.rows)

    def test_metadata_embeds_rounded_summaries(self):
        artifact = run(ExperimentSpec(
            "scenario-matrix", schedulers=("fifo",),
            scenarios=("datamining-a2a",), **TINY))
        meta = artifact.metadata
        assert meta["scenario"] == "datamining-a2a"
        assert meta["pattern"] == "all-to-all"
        assert meta["distribution"] == "data-mining"
        jain = meta["fairness"]["fifo"]
        assert 0.0 < jain <= 1.0
        assert jain == round(jain, 6)  # ARTIFACT_DIGITS rounding applied
        utilisation = meta["link_utilisation"]["fifo"]
        assert utilisation
        assert all(0.0 <= u for u in utilisation.values())
        assert all(u == round(u, 6) for u in utilisation.values())
        assert list(utilisation) == sorted(utilisation)

    def test_default_scenario_and_schedulers(self):
        artifact = run(ExperimentSpec("scenario-matrix", **TINY))
        assert artifact.metadata["scenario"] == "websearch-incast"
        assert [row[2] for row in artifact.rows] == ["fifo", "fq", "sjf"]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            run(ExperimentSpec("scenario-matrix", schedulers=("warp",),
                               **TINY))

    def test_leg_helper_is_deterministic(self):
        scenario = get_scenario("websearch-incast")
        a = run_scenario_leg(scenario, "fifo", 1, 0.006, 0.01)
        b = run_scenario_leg(scenario, "fifo", 1, 0.006, 0.01)
        assert a == b

    def test_random_scheduler_leg_is_seeded(self):
        scenario = get_scenario("datamining-a2a")
        a = run_scenario_leg(scenario, "random", 3, 0.006, 0.01)
        b = run_scenario_leg(scenario, "random", 3, 0.006, 0.01)
        assert a == b


class TestSweepAxis:
    def test_scenarios_expand_outermost(self):
        assert [(s.scenario, s.seed) for s in SWEEP] == [
            ("websearch-incast", 1), ("websearch-incast", 2),
            ("datamining-a2a", 1), ("datamining-a2a", 2),
        ]

    def test_each_leg_carries_one_scenario(self):
        assert all(len(s.scenarios) == 1 for s in SWEEP)


class TestByteIdentity:
    def test_process_executor_matches_serial(self):
        serial = run_many(SWEEP)
        parallel = run_many(SWEEP, workers=2)
        assert [a.canonical_json() for a in parallel] == [
            a.canonical_json() for a in serial
        ]

    def test_queue_executor_matches_serial(self, tmp_path):
        serial = run_many(SWEEP)
        queued = run_many(SWEEP, workers=2, executor="queue",
                          queue_dir=tmp_path / "q")
        assert [a.canonical_json() for a in queued] == [
            a.canonical_json() for a in serial
        ]


@pytest.mark.slow
def test_stress_scaled_matrix_stays_byte_identical(tmp_path):
    """The nightly leg: a full-catalogue matrix, scaled by
    ``REPRO_STRESS_SCALE``, gathered from the queue byte-identical to
    serial."""
    sweep = ExperimentSpec(
        "scenario-matrix",
        schedulers=("fifo", "fq"),
        scenarios=("websearch-incast", "datamining-a2a",
                   "internet-permutation", "pareto-burst",
                   "datamining-incast-slow"),
        seeds=tuple(range(1, 2 * SCALE + 1)),
        duration=0.01 * SCALE,
        bandwidth_scale=0.01,
    ).sweep()
    serial = run_many(sweep)
    queued = run_many(sweep, workers=4, executor="queue",
                      queue_dir=tmp_path / "q")
    assert [a.canonical_json() for a in queued] == [
        a.canonical_json() for a in serial
    ]
