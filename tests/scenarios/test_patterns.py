"""Traffic patterns: deterministic generation and per-pattern shape."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.scenarios import (
    SEED_FID_STRIDE,
    Scenario,
    get_scenario,
    scenario_flows,
    scenario_hosts,
    scenario_names,
)


@pytest.mark.parametrize("name", sorted(
    {"websearch-incast", "datamining-a2a", "internet-permutation",
     "pareto-burst"}))
def test_same_seed_same_flow_list(name):
    scenario = get_scenario(name)
    a = scenario_flows(scenario, seed=5, duration=0.01)
    b = scenario_flows(scenario, seed=5, duration=0.01)
    assert a == b
    assert a  # never an empty leg


def test_distinct_seeds_have_disjoint_fid_ranges():
    scenario = get_scenario("websearch-incast")
    fids_1 = {f.fid for f in scenario_flows(scenario, 1, 0.01)}
    fids_2 = {f.fid for f in scenario_flows(scenario, 2, 0.01)}
    assert fids_1.isdisjoint(fids_2)
    assert all(SEED_FID_STRIDE < fid <= 2 * SEED_FID_STRIDE for fid in fids_1)


def test_flows_sorted_by_start_then_fid():
    flows = scenario_flows(get_scenario("pareto-burst"), 3, 0.02)
    assert flows == sorted(flows, key=lambda f: (f.start, f.fid))


def test_sizes_respect_the_cap():
    scenario = get_scenario("datamining-a2a")
    flows = scenario_flows(scenario, 7, 0.05)
    assert all(1 <= f.size <= scenario.size_cap for f in flows)


def test_incast_targets_a_single_receiver():
    scenario = get_scenario("websearch-incast")
    flows = scenario_flows(scenario, 1, 0.01)
    _senders, receivers = scenario_hosts(scenario)
    assert {f.dst for f in flows} == {receivers[0]}


def test_all_to_all_spreads_across_receivers():
    scenario = get_scenario("datamining-a2a")
    flows = scenario_flows(scenario, 1, 0.02)
    _senders, receivers = scenario_hosts(scenario)
    assert {f.dst for f in flows} == set(receivers)


def test_permutation_pairs_each_sender_with_one_receiver_per_round():
    scenario = get_scenario("internet-permutation")
    senders, receivers = scenario_hosts(scenario)
    flows = scenario_flows(scenario, 1, scenario.interval)  # one round
    per_sender = {}
    for f in flows:
        per_sender.setdefault(f.src, set()).add(f.dst)
    # one receiver per sender, never itself's pair, and a bijection
    assert all(len(dsts) == 1 for dsts in per_sender.values())
    assigned = [next(iter(per_sender[s])) for s in senders]
    assert sorted(assigned) == sorted(receivers)
    assert all(dst != f"d_{i}" for i, dst in enumerate(assigned))


def test_staggered_burst_offsets_senders_within_the_round():
    scenario = get_scenario("pareto-burst").with_(jitter=0.0)
    senders, receivers = scenario_hosts(scenario)
    flows = scenario_flows(scenario, 1, scenario.interval)  # one round
    starts = {f.src: f.start for f in flows}
    stagger = scenario.interval / len(senders)
    for i, sender in enumerate(senders):
        assert starts[sender] == pytest.approx(i * stagger)
    assert {f.dst for f in flows} == {receivers[0]}


def test_more_duration_means_more_rounds():
    scenario = get_scenario("websearch-incast")
    one = scenario_flows(scenario, 1, scenario.interval)
    three = scenario_flows(scenario, 1, 3 * scenario.interval)
    assert len(three) == 3 * len(one)


def test_rejects_nonpositive_duration():
    with pytest.raises(WorkloadError, match="duration"):
        scenario_flows(get_scenario("websearch-incast"), 1, 0.0)


def test_every_builtin_generates_under_every_seed():
    for name in scenario_names():
        for seed in (1, 2):
            flows = scenario_flows(get_scenario(name), seed, 0.005)
            assert flows
            assert len({f.fid for f in flows}) == len(flows)  # unique fids


def test_custom_scenario_generates_too():
    scenario = Scenario("inline", pattern="all-to-all",
                        distribution="exponential", topology="single-switch",
                        hosts=4, flows_per_host=1)
    flows = scenario_flows(scenario, 9, 0.01)
    assert {f.dst for f in flows} == {"sink"}  # single receiver topology
