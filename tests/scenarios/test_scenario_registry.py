"""Scenario DSL + registry: validation, round-trips, completeness.

The completeness tests mirror ``tests/api/test_registry.py``: every
built-in scenario must JSON-round-trip losslessly, names must be unique,
and nothing can rot behind the registry unnoticed.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    PATTERNS,
    SCENARIOS,
    SCENARIO_TOPOLOGIES,
    Scenario,
    ScenarioRegistry,
    build_scenario_network,
    get_scenario,
    scenario_hosts,
    scenario_names,
)

EXPECTED = {
    "websearch-incast",
    "datamining-a2a",
    "internet-permutation",
    "pareto-burst",
    "datamining-incast-slow",
}


class TestScenarioSpec:
    def test_round_trip_is_lossless(self):
        s = Scenario("demo", pattern="permutation", distribution="internet",
                     topology="parking-lot", hosts=3, flows_per_host=4,
                     size_cap=123, interval=0.004, jitter=0.002,
                     delay=0.001, bottleneck_scale=0.25)
        assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s

    def test_with_replaces_fields(self):
        s = get_scenario("websearch-incast").with_(hosts=9)
        assert s.hosts == 9
        assert s.name == "websearch-incast"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            Scenario.from_dict({"name": "x", "nope": 1})

    @pytest.mark.parametrize("bad", [
        dict(name=""),
        dict(name="x", pattern="broadcast"),
        dict(name="x", topology="torus"),
        dict(name="x", distribution="zipf"),
        dict(name="x", hosts=1),
        dict(name="x", hosts=2.0),
        dict(name="x", hosts=True),
        dict(name="x", flows_per_host=0),
        dict(name="x", size_cap=0),
        dict(name="x", interval=0.0),
        dict(name="x", jitter=-0.001),
        dict(name="x", delay=-1.0),
        dict(name="x", bottleneck_scale=0.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            Scenario(**bad)


class TestRegistry:
    def test_builtin_catalogue(self):
        assert set(scenario_names()) == EXPECTED
        assert scenario_names() == tuple(sorted(EXPECTED))  # unique + sorted

    def test_every_registered_scenario_round_trips(self):
        for scenario in SCENARIOS.entries():
            payload = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(payload) == scenario

    def test_entries_align_with_names(self):
        assert tuple(s.name for s in SCENARIOS.entries()) == scenario_names()

    def test_contains_and_lookup(self):
        assert "websearch-incast" in SCENARIOS
        assert "nosuch" not in SCENARIOS
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("nosuch")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(lambda: Scenario("dup"))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(lambda: Scenario("dup"))

    def test_factory_must_return_a_scenario(self):
        registry = ScenarioRegistry()
        with pytest.raises(ConfigurationError, match="must return a Scenario"):
            registry.register(lambda: {"name": "not-a-scenario"})


class TestTopologies:
    @pytest.mark.parametrize("topology", SCENARIO_TOPOLOGIES)
    def test_hosts_exist_in_the_built_network(self, topology):
        scenario = Scenario("t", topology=topology, hosts=3)
        network = build_scenario_network(scenario, bandwidth_scale=0.01)
        senders, receivers = scenario_hosts(scenario)
        node_names = {h.name for h in network.hosts}
        assert set(senders) <= node_names
        assert set(receivers) <= node_names
        assert len(senders) == 3

    def test_rejects_bad_bandwidth_scale(self):
        with pytest.raises(ConfigurationError, match="bandwidth_scale"):
            build_scenario_network(Scenario("t"), bandwidth_scale=0.0)

    def test_every_pattern_and_topology_is_covered_by_a_builtin(self):
        """The catalogue spans the DSL: each pattern and each topology
        appears in at least one registered scenario."""
        entries = SCENARIOS.entries()
        assert {s.pattern for s in entries} == set(PATTERNS)
        assert {s.topology for s in entries} == set(SCENARIO_TOPOLOGIES)
