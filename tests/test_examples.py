"""Smoke tests: the example scripts run and print their expected shapes.

Only the two fastest examples run in-process here (the full set is
exercised manually / by CI at longer horizons); this guards against the
examples drifting out of sync with the library API.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    # part 1: the declarative front door
    assert "Table 1" in out
    assert "round-trips losslessly: True" in out
    # part 2: the record/replay machinery
    assert "recorded" in out
    assert "replay[omniscient]" in out
    assert "PERFECT" in out


def test_theory_counterexamples(capsys):
    out = _run("theory_counterexamples.py", capsys)
    assert "all 6 priority orderings fail? True" in out
    assert "LSTF replay perfect?           True" in out  # figure 6
    assert "omniscient" in out


def test_cluster_sweep(capsys):
    out = _run("cluster_sweep.py", capsys)
    assert "submitted jobs [1, 2, 3, 4]" in out
    assert "4 done, 0 failed" in out
    assert "byte-for-byte: True" in out


@pytest.mark.parametrize(
    "name",
    ["replay_experiment.py", "fct_comparison.py", "tail_latency.py",
     "fairness_convergence.py"],
)
def test_other_examples_importable(name):
    """The remaining examples at least parse and expose a main()."""
    source = (EXAMPLES / name).read_text()
    code = compile(source, name, "exec")
    namespace: dict = {"__name__": "not_main"}
    exec(code, namespace)  # definitions only; main() guarded
    assert callable(namespace["main"])
