"""Runner semantics: suppressions, baseline, walking, JSON, CLI, meta.

The meta-test at the bottom is the PR's standing guarantee: ``repro
lint src/`` is clean at HEAD, so any commit that introduces an
unsuppressed finding fails tier-1 CI, not just the dedicated lint job.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.lintkit import (
    JSON_SCHEMA_VERSION,
    lint_file,
    lint_paths,
    load_baseline,
)

REPO = Path(__file__).resolve().parents[2]

BAD_SIM = "import random\nx = random.random()\n"


# --- suppression semantics ---------------------------------------------------

def test_reasoned_allow_suppresses():
    src = (
        "import random\n"
        "x = random.random()  # repro: allow(DET-RANDOM) fixture needs it\n"
    )
    findings = lint_file("sim/f.py", source=src)
    assert [(f.rule, f.suppressed, f.reason) for f in findings] == [
        ("DET-RANDOM", True, "fixture needs it"),
    ]


def test_allow_without_reason_rejected():
    src = "import random\nx = random.random()  # repro: allow(DET-RANDOM)\n"
    rules = {f.rule for f in lint_file("sim/f.py", source=src)
             if not f.suppressed}
    # The bare allow does not suppress, and is itself a finding.
    assert rules == {"DET-RANDOM", "ALW-REASON"}


def test_allow_unknown_rule_rejected():
    src = "x = 1  # repro: allow(NOPE-42) because reasons\n"
    rules = {f.rule for f in lint_file("sim/f.py", source=src)}
    assert rules == {"ALW-UNKNOWN"}


def test_allow_matching_nothing_is_stale():
    src = "x = 1  # repro: allow(DET-RANDOM) nothing here\n"
    rules = {f.rule for f in lint_file("sim/f.py", source=src)}
    assert rules == {"ALW-UNUSED"}


def test_allow_on_wrong_line_does_not_suppress():
    src = (
        "import random\n"
        "# repro: allow(DET-RANDOM) wrong line\n"
        "x = random.random()\n"
    )
    unsuppressed = {f.rule for f in lint_file("sim/f.py", source=src)
                    if not f.suppressed}
    assert "DET-RANDOM" in unsuppressed
    assert "ALW-UNUSED" in unsuppressed


def test_comma_separated_allow_covers_both_rules():
    src = (
        "import random, time\n"
        "x = [random.random(), time.time()]  "
        "# repro: allow(DET-RANDOM, DET-WALLCLOCK) fixture exercises both\n"
    )
    findings = lint_file("sim/f.py", source=src)
    assert all(f.suppressed for f in findings)
    assert {f.rule for f in findings} == {"DET-RANDOM", "DET-WALLCLOCK"}


def test_allow_inside_string_literal_is_inert():
    # Only real COMMENT tokens count — a string containing the syntax
    # neither suppresses nor trips the ALW rules.
    src = "import random\nx = random.random()\ns = '# repro: allow(DET-RANDOM) nope'\n"
    findings = lint_file("sim/f.py", source=src)
    assert [(f.rule, f.suppressed) for f in findings] == [("DET-RANDOM", False)]


def test_alw_rules_cannot_be_suppressed():
    src = "x = 1  # repro: allow(ALW-UNUSED) self-vouching\n"
    findings = lint_file("sim/f.py", source=src)
    assert [(f.rule, f.suppressed) for f in findings] == [("ALW-UNUSED", False)]


def test_syntax_error_becomes_lnt_parse():
    findings = lint_file("sim/broken.py", source="def f(:\n")
    assert [f.rule for f in findings] == ["LNT-PARSE"]


# --- path walking and baseline ----------------------------------------------

def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "sim").mkdir()
    (tmp_path / "sim" / "bad.py").write_text(BAD_SIM)
    (tmp_path / "sim" / "__pycache__").mkdir()
    (tmp_path / "sim" / "__pycache__" / "junk.py").write_text(BAD_SIM)
    report = lint_paths([tmp_path])
    assert report.files_checked == 1
    assert [f.rule for f in report.unsuppressed] == ["DET-RANDOM"]


def test_lint_paths_missing_path_is_config_error(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        lint_paths([tmp_path / "nope"])


def test_baseline_waives_without_hiding(tmp_path):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"version": 1,
         "findings": [{"path": str(bad), "rule": "DET-RANDOM", "line": 2}]}
    ))
    report = lint_paths([bad], baseline=load_baseline(baseline))
    assert report.clean
    assert [(f.rule, f.reason) for f in report.findings] == [
        ("DET-RANDOM", "baseline"),
    ]


def test_malformed_baseline_is_config_error(tmp_path):
    path = tmp_path / "b.json"
    path.write_text("[]")
    with pytest.raises(ConfigurationError, match="findings"):
        load_baseline(path)


# --- JSON schema -------------------------------------------------------------

def test_report_json_schema(tmp_path):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM)
    doc = lint_paths([bad]).to_dict()
    assert doc["version"] == JSON_SCHEMA_VERSION
    assert doc["files_checked"] == 1
    assert doc["clean"] is False
    assert doc["unsuppressed"] == 1
    assert doc["suppressed"] == 0
    (finding,) = doc["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message",
                            "suppressed", "reason"}
    assert finding["rule"] == "DET-RANDOM"
    assert finding["line"] == 2


# --- CLI ---------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET-RANDOM" in out
    bad.write_text("x = 1\n")
    assert main(["lint", str(bad)]) == 0
    assert main(["lint", str(tmp_path / "missing.py")]) == 2


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "cluster" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("def f(c):\n    c.execute('UPDATE t SET x = 1')\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == JSON_SCHEMA_VERSION
    assert doc["findings"][0]["rule"] == "SQL-TXN"


def test_cli_baseline_flag(tmp_path, capsys):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"findings": [{"path": str(bad), "rule": "DET-RANDOM", "line": 2}]}
    ))
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "DET-RANDOM" in out
    assert "SQL-TXN" in out
    assert main(["lint", "--list-rules", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    ids = [rule["id"] for rule in doc["rules"]]
    assert ids == sorted(ids)
    assert "PERF-SLOTS" in ids


# --- the meta-test: this repo lints clean at HEAD ----------------------------

def test_repo_src_is_lint_clean(capsys):
    assert main(["lint", str(REPO / "src")]) == 0, capsys.readouterr().out


def test_repo_cluster_tests_are_lint_clean(capsys):
    assert main(["lint", str(REPO / "tests" / "cluster")]) == 0, \
        capsys.readouterr().out
