"""Fixture-based rule tests: bad snippet → exact finding, good → clean.

Each case lints an in-memory snippet under a synthetic path whose
directory segments put it in the scope under test (``sim/x.py`` for the
determinism family, ``cluster/x.py`` for the transaction/thread family),
via :func:`repro.lintkit.lint_file`'s ``source`` override.
"""

from __future__ import annotations

import pytest

from repro.lintkit import lint_file, rule_ids, rules_for_path
from repro.lintkit.rules import load_rules


def findings_for(path: str, source: str) -> list[tuple[str, int]]:
    """(rule, line) pairs a snippet produces, suppressed ones excluded."""
    return [(f.rule, f.line) for f in lint_file(path, source=source)
            if not f.suppressed]


# --- DET-RANDOM --------------------------------------------------------------

def test_module_level_random_flagged():
    src = "import random\nx = random.random()\n"
    assert findings_for("sim/bad.py", src) == [("DET-RANDOM", 2)]


def test_unseeded_random_constructor_flagged():
    src = "import random\nrng = random.Random()\n"
    assert findings_for("sim/bad.py", src) == [("DET-RANDOM", 2)]


def test_seeded_injected_rng_clean():
    src = (
        "import random\n"
        "def f(rng: random.Random):\n"
        "    return rng.random()\n"
        "rng = random.Random(7)\n"
    )
    assert findings_for("sim/good.py", src) == []


def test_numpy_legacy_global_flagged_aliased_import():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert findings_for("sim/bad.py", src) == [("DET-RANDOM", 2)]


def test_numpy_seeded_default_rng_clean():
    src = "import numpy as np\nrng = np.random.default_rng(3)\n"
    assert findings_for("sim/good.py", src) == []


def test_random_outside_scope_not_flagged():
    src = "import random\nx = random.random()\n"
    assert findings_for("analysis/fine.py", src) == []


# --- DET-WALLCLOCK -----------------------------------------------------------

def test_time_time_flagged_in_sim():
    src = "import time\nnow = time.time()\n"
    assert findings_for("sim/bad.py", src) == [("DET-WALLCLOCK", 2)]


def test_perf_counter_from_import_flagged():
    src = "from time import perf_counter\nt = perf_counter()\n"
    assert findings_for("core/bad.py", src) == [("DET-WALLCLOCK", 2)]


def test_wallclock_fine_in_cluster():
    # Leases and heartbeats are wall-clock by design.
    src = "import time\nnow = time.time()\n"
    assert findings_for("cluster/queue.py", src) == []


# --- DET-SET-ITER ------------------------------------------------------------

def test_for_over_set_literal_flagged():
    src = "for x in {1, 2, 3}:\n    print(x)\n"
    assert findings_for("sim/bad.py", src) == [("DET-SET-ITER", 1)]


def test_list_of_set_call_flagged():
    src = "items = list(set(data))\n"
    assert findings_for("sim/bad.py", src) == [("DET-SET-ITER", 1)]


def test_sorted_set_clean():
    src = "for x in sorted({1, 2, 3}):\n    print(x)\n"
    assert findings_for("sim/good.py", src) == []


# --- DET-ID-ORDER / DET-OBJECT-HASH -----------------------------------------

def test_builtin_id_flagged():
    src = "def key(pkt):\n    return id(pkt)\n"
    assert findings_for("schedulers/bad.py", src) == [("DET-ID-ORDER", 2)]


def test_builtin_hash_flagged():
    src = "def key(pkt):\n    return hash(pkt)\n"
    assert findings_for("sim/bad.py", src) == [("DET-OBJECT-HASH", 2)]


def test_imported_id_name_not_flagged():
    # A local `id` imported from elsewhere is not the builtin.
    src = "from mypkg import id\nx = id(3)\n"
    assert findings_for("sim/good.py", src) == []


# --- SQL-TXN -----------------------------------------------------------------

def test_bare_update_flagged():
    src = (
        "def f(conn):\n"
        "    conn.execute('UPDATE jobs SET x = 1')\n"
    )
    assert findings_for("cluster/bad.py", src) == [("SQL-TXN", 2)]


def test_update_after_begin_immediate_clean():
    src = (
        "def f(conn):\n"
        "    conn.execute('BEGIN IMMEDIATE')\n"
        "    conn.execute('UPDATE jobs SET x = 1')\n"
        "    conn.execute('COMMIT')\n"
    )
    assert findings_for("cluster/good.py", src) == []


def test_mutation_before_begin_flagged():
    src = (
        "def f(conn):\n"
        "    conn.execute('DELETE FROM leases')\n"
        "    conn.execute('BEGIN IMMEDIATE')\n"
        "    conn.execute('COMMIT')\n"
    )
    assert findings_for("cluster/bad.py", src) == [("SQL-TXN", 2)]


def test_select_needs_no_transaction():
    src = (
        "def f(conn):\n"
        "    return conn.execute('SELECT * FROM jobs').fetchall()\n"
    )
    assert findings_for("cluster/good.py", src) == []


def test_sql_rule_silent_outside_cluster():
    src = "def f(conn):\n    conn.execute('UPDATE t SET x = 1')\n"
    assert findings_for("sim/fine.py", src) == []


# --- THR-* -------------------------------------------------------------------

def test_thread_target_mutating_self_flagged():
    src = (
        "import threading\n"
        "class W:\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._loop).start()\n"
        "    def _loop(self):\n"
        "        self.counter = 1\n"
    )
    assert findings_for("cluster/bad.py", src) == [("THR-THREAD-MUT", 6)]


def test_thread_target_signalling_event_clean():
    src = (
        "import threading\n"
        "class W:\n"
        "    def __init__(self):\n"
        "        self._dead = threading.Event()\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._loop).start()\n"
        "    def _loop(self):\n"
        "        self._dead.set()\n"
    )
    assert findings_for("cluster/good.py", src) == []


def test_time_sleep_in_event_owning_class_flagged():
    src = (
        "import threading\n"
        "import time\n"
        "class W:\n"
        "    def __init__(self):\n"
        "        self._stop = threading.Event()\n"
        "    def serve(self):\n"
        "        time.sleep(1)\n"
    )
    assert findings_for("cluster/bad.py", src) == [("THR-SLEEP", 7)]


def test_event_wait_clean():
    src = (
        "import threading\n"
        "class W:\n"
        "    def __init__(self):\n"
        "        self._stop = threading.Event()\n"
        "    def serve(self):\n"
        "        self._stop.wait(1)\n"
    )
    assert findings_for("cluster/good.py", src) == []


# --- PERF-* ------------------------------------------------------------------

def test_slotless_class_flagged_in_sim():
    src = "class Port:\n    def __init__(self):\n        self.q = []\n"
    assert findings_for("sim/bad.py", src) == [("PERF-SLOTS", 1)]


def test_slotted_class_clean():
    src = "class Port:\n    __slots__ = ('q',)\n"
    assert findings_for("sim/good.py", src) == []


def test_slotted_dataclass_clean():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\n"
        "class Port:\n"
        "    q: int\n"
    )
    assert findings_for("sim/good.py", src) == []


def test_protocol_and_exception_exempt_from_slots():
    src = (
        "from typing import Protocol\n"
        "class Agent(Protocol):\n"
        "    def deliver(self): ...\n"
        "class SimError(ValueError):\n"
        "    pass\n"
    )
    assert findings_for("sim/good.py", src) == []


def test_perf_rules_skip_test_trees():
    src = "class TestPort:\n    def test_x(self):\n        pass\n"
    assert findings_for("tests/sim/test_port.py", src) == []


def test_schedule_handle_consumption_flagged():
    src = "def f(engine, cb):\n    h = engine.schedule(1.0, cb)\n"
    assert findings_for("sim/bad.py", src) == [("PERF-SCHEDULE-HANDLE", 2)]


def test_schedule_as_statement_clean():
    src = (
        "def f(engine, cb):\n"
        "    engine.schedule(1.0, cb)\n"
        "    h = engine.schedule_cancellable(1.0, cb)\n"
        "    return h\n"
    )
    assert findings_for("sim/good.py", src) == []


# --- OBS-SAMPLER-PURE --------------------------------------------------------

def test_sampler_callback_mutating_attribute_flagged():
    src = (
        "def depth(now):\n"
        "    port.backlog = 0\n"
        "    return port.backlog\n"
        "hub.add_sampler('depth', depth)\n"
    )
    assert findings_for("obs/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]


def test_sampler_callback_augmented_assignment_flagged():
    src = (
        "def drain(now):\n"
        "    flow.slack -= now\n"
        "    return flow.slack\n"
        "engine.schedule_sample(1.0, drain)\n"
    )
    assert findings_for("sim/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]


def test_sampler_callback_subscript_write_flagged():
    src = (
        "def poke(now):\n"
        "    net.nodes['a'] = None\n"
        "    return 0.0\n"
        "hub.add_sampler('poke', poke)\n"
    )
    assert findings_for("obs/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]


def test_sampler_callback_keyword_argument_resolved():
    src = (
        "def depth(now):\n"
        "    port.backlog = 0\n"
        "    return 0.0\n"
        "hub.add_sampler('depth', fn=depth)\n"
    )
    assert findings_for("obs/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]


def test_pure_reader_sampler_clean():
    src = (
        "def depth(now):\n"
        "    total = sum(p.backlog for p in ports)\n"
        "    return float(total)\n"
        "hub.add_sampler('depth', depth)\n"
        "hub.add_sampler('const', lambda now: 1.0)\n"
    )
    assert findings_for("obs/good.py", src) == []


def test_unresolvable_bound_method_callback_skipped():
    # The hub's own re-arming tick passes `self.tick` — syntactically
    # unresolvable, deliberately not guessed at.
    src = "engine.schedule_sample(1.0, self.tick)\n"
    assert findings_for("obs/good.py", src) == []


def test_local_assignments_inside_sampler_clean():
    src = (
        "def depth(now):\n"
        "    acc = 0\n"
        "    acc += 1\n"
        "    return float(acc)\n"
        "engine.schedule_sample(1.0, depth)\n"
    )
    assert findings_for("sim/good.py", src) == []


def test_sampler_rule_bites_in_sim_and_obs_scopes_only():
    src = (
        "def bad(now):\n"
        "    port.backlog = 0\n"
        "hub.add_sampler('bad', bad)\n"
    )
    assert findings_for("analysis/fine.py", src) == []
    assert findings_for("obs/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]
    assert findings_for("sim/bad.py", src) == [("OBS-SAMPLER-PURE", 2)]


# --- registry / scoping ------------------------------------------------------

def test_rule_ids_are_stable_and_sorted():
    ids = rule_ids()
    assert list(ids) == sorted(ids)
    assert {"DET-RANDOM", "DET-WALLCLOCK", "DET-SET-ITER", "SQL-TXN",
            "THR-THREAD-MUT", "THR-SLEEP", "PERF-SLOTS",
            "PERF-SCHEDULE-HANDLE", "OBS-SAMPLER-PURE", "ALW-REASON",
            "ALW-UNKNOWN", "ALW-UNUSED", "LNT-PARSE"} <= set(ids)


def test_every_rule_documents_its_invariant():
    for rule in load_rules().values():
        assert rule.summary, rule.id
        assert rule.invariant, rule.id


def test_scoping_sim_stricter_than_cli():
    sim_rules = {r.id for r in rules_for_path("src/repro/sim/engine.py")}
    cli_rules = {r.id for r in rules_for_path("src/repro/cli.py")}
    assert "DET-WALLCLOCK" in sim_rules
    assert "DET-WALLCLOCK" not in cli_rules
    assert cli_rules < sim_rules


def test_cluster_scope_gets_sql_not_wallclock():
    cluster = {r.id for r in rules_for_path("src/repro/cluster/queue.py")}
    assert "SQL-TXN" in cluster
    assert "THR-THREAD-MUT" in cluster
    assert "DET-RANDOM" in cluster
    assert "DET-WALLCLOCK" not in cluster


def test_duplicate_rule_id_rejected():
    from repro.lintkit.rules import register_rule

    with pytest.raises(ValueError, match="already registered"):
        register_rule("DET-RANDOM", summary="dup", invariant="dup",
                      scopes=("*",))(lambda ctx: iter(()))
