"""The public API surface: everything advertised in ``repro.__all__``
exists, and the README quickstart runs."""

from __future__ import annotations

import functools

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


def test_readme_quickstart_flow():
    make_net = functools.partial(repro.build_dumbbell, num_pairs=4)
    net = make_net()
    flows = repro.poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=repro.BoundedPareto(alpha=1.2, low=1500, high=100_000),
        workload=repro.PoissonWorkload(
            utilization=0.7, reference_bandwidth=50e6, duration=0.05, seed=42
        ),
    )
    repro.install_udp_flows(net, flows)
    schedule = repro.record_schedule(net)
    result = repro.replay_schedule(schedule, make_net, mode="lstf")
    assert "overdue" in result.summary()


def test_scheduler_registry_is_exported():
    names = repro.scheduler_names()
    assert "lstf" in names and "fifo" in names
    assert repro.make_scheduler("lstf").name == "lstf"
